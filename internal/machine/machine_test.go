package machine

import (
	"testing"

	"repro/internal/formats"
	"repro/internal/gen"
)

func TestCacheBasics(t *testing.T) {
	c, err := NewCache(CacheConfig{SizeBytes: 1024, Ways: 2, LineBytes: 64, HitCycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(0) {
		t.Fatal("cold access must miss")
	}
	if !c.Access(0) || !c.Access(32) {
		t.Fatal("same line must hit")
	}
	if c.Access(64) {
		t.Fatal("next line must miss")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Fatalf("stats %d/%d", hits, misses)
	}
	c.Reset()
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatal("reset must clear stats")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 8 sets of 64B lines: three lines mapping to the same set
	// evict the least recently used.
	c, err := NewCache(CacheConfig{SizeBytes: 1024, Ways: 2, LineBytes: 64, HitCycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	setStride := uint64(8 * 64) // 8 sets
	a, b, d := uint64(0), setStride, 2*setStride
	c.Access(a)
	c.Access(b)
	c.Access(a) // a most recent
	c.Access(d) // evicts b
	if !c.Access(a) {
		t.Fatal("a should survive")
	}
	if c.Access(b) {
		t.Fatal("b should have been evicted")
	}
}

func TestCacheConfigValidation(t *testing.T) {
	bad := []CacheConfig{
		{SizeBytes: 0, Ways: 2, LineBytes: 64},
		{SizeBytes: 1000, Ways: 2, LineBytes: 64},   // not line-divisible
		{SizeBytes: 64 * 6, Ways: 2, LineBytes: 64}, // 3 sets: not power of two
		{SizeBytes: 1024, Ways: 2, LineBytes: 48},   // line not power of two
	}
	for _, cfg := range bad {
		if _, err := NewCache(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestMachineCostAccumulation(t *testing.T) {
	m, err := New(GraceArm())
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles() != 0 {
		t.Fatal("fresh machine must be at zero")
	}
	m.FMA(80, 1000)
	// 4 pipes * 2 lanes = 8 flops/cycle -> 10 cycles.
	if m.Cycles() != 10 {
		t.Fatalf("FMA cycles %v, want 10", m.Cycles())
	}
	if m.Flops() != 160 {
		t.Fatalf("flops %d, want 160", m.Flops())
	}
	m.Reset()
	m.FMA(8, 1) // vector length 1: scalar FMA, 4 pipes -> 2 cycles
	if m.Cycles() != 2 {
		t.Fatalf("scalar FMA cycles %v, want 2", m.Cycles())
	}
	m.Reset()
	m.Scalar(10)
	if m.Cycles() != 2 { // ScalarIPC 5
		t.Fatalf("scalar cycles %v, want 2", m.Cycles())
	}
}

func TestMachineMemoryHierarchy(t *testing.T) {
	prof := GraceArm()
	m, err := New(prof)
	if err != nil {
		t.Fatal(err)
	}
	// First touch: all-level miss -> demand memory cost.
	m.LoadScalar(0, 8)
	if m.Cycles() != prof.MemCycles {
		t.Fatalf("cold scalar load cost %v, want %v", m.Cycles(), prof.MemCycles)
	}
	before := m.Cycles()
	m.LoadScalar(8, 8) // same line -> L1 hit
	if got := m.Cycles() - before; got < prof.Caches[0].HitCycles-1e-9 || got > prof.Caches[0].HitCycles+1e-9 {
		t.Fatalf("L1 hit cost %v, want %v", got, prof.Caches[0].HitCycles)
	}
	if m.MemMissRate() != 0.5 {
		t.Fatalf("miss rate %v, want 0.5", m.MemMissRate())
	}
}

func TestStreamMissCheaperThanDemandMiss(t *testing.T) {
	prof := AriesX86()
	m1, _ := New(prof)
	m1.LoadRange(0, 64) // one streamed line, cold
	m2, _ := New(prof)
	m2.LoadScalar(0, 8) // one demand line, cold
	if m1.Cycles() >= m2.Cycles() {
		t.Fatalf("streamed miss %v should be cheaper than demand miss %v",
			m1.Cycles(), m2.Cycles())
	}
}

func TestLoadRangeTouchesEachLineOnce(t *testing.T) {
	m, err := New(AriesX86())
	if err != nil {
		t.Fatal(err)
	}
	m.LoadRange(0, 256) // 4 lines of 64B
	if m.accesses != 4 {
		t.Fatalf("range touched %d lines, want 4", m.accesses)
	}
	m.LoadRange(32, 64) // straddles two (now cached) lines
	if m.accesses != 6 {
		t.Fatalf("straddling range: %d touches, want 6", m.accesses)
	}
}

func TestIrregularPenaltyScalesWithLines(t *testing.T) {
	prof := GraceArm()
	m1, _ := New(prof)
	m1.LoadIrregular(0, 64)
	m2, _ := New(prof)
	m2.LoadIrregular(0, 1024) // 16 lines
	p1 := m1.Cycles() - func() float64 { m, _ := New(prof); m.loadRangeDemand(0, 64); return m.Cycles() }()
	p16 := m2.Cycles() - func() float64 { m, _ := New(prof); m.loadRangeDemand(0, 1024); return m.Cycles() }()
	if p16 != 16*p1 {
		t.Fatalf("penalty must scale with lines: %v vs 16*%v", p16, p1)
	}
}

func TestProfileValidation(t *testing.T) {
	bad := GraceArm()
	bad.FMAPipes = 0
	if _, err := New(bad); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestSimulationsProduceConsistentResults(t *testing.T) {
	m, _, err := gen.GenerateScaled("bcsstk13", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	k := 64
	csr := formats.CSRFromCOO(m)
	for _, prof := range Profiles() {
		r1, err := SimulateCSR(prof, csr, k)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := SimulateCSR(prof, csr, k)
		if err != nil {
			t.Fatal(err)
		}
		if r1 != r2 {
			t.Fatalf("%s: nondeterministic simulation", prof.Name)
		}
		if r1.Seconds <= 0 || r1.MFLOPS <= 0 || r1.Arch != prof.Name {
			t.Fatalf("%s: nonsense result %+v", prof.Name, r1)
		}
	}
}

// TestArchitectureShape locks in the Study 6 headline: the x86 profile wins
// the gather-bound scalar formats, the Arm profile wins BCSR at every block
// size (§5.8: "For COO, CSR, and ELLPACK, the Aries versions all performed
// better. The opposite was true on BCSR.").
func TestArchitectureShape(t *testing.T) {
	grace, aries := GraceArm(), AriesX86()
	k := 128
	for _, name := range []string{"cant", "bcsstk17", "2cubes_sphere", "dw4096"} {
		m, _, err := gen.GenerateScaled(name, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		csr := formats.CSRFromCOO(m)
		ell := formats.ELLFromCOO(m, formats.RowMajor)

		gCOO, _ := SimulateCOO(grace, m, k)
		aCOO, _ := SimulateCOO(aries, m, k)
		if aCOO.MFLOPS <= gCOO.MFLOPS {
			t.Errorf("%s: COO should favour x86 (%0.f vs %0.f)", name, aCOO.MFLOPS, gCOO.MFLOPS)
		}
		gCSR, _ := SimulateCSR(grace, csr, k)
		aCSR, _ := SimulateCSR(aries, csr, k)
		if aCSR.MFLOPS <= gCSR.MFLOPS {
			t.Errorf("%s: CSR should favour x86 (%0.f vs %0.f)", name, aCSR.MFLOPS, gCSR.MFLOPS)
		}
		gELL, _ := SimulateELL(grace, ell, k)
		aELL, _ := SimulateELL(aries, ell, k)
		if aELL.MFLOPS <= gELL.MFLOPS {
			t.Errorf("%s: ELL should favour x86 (%0.f vs %0.f)", name, aELL.MFLOPS, gELL.MFLOPS)
		}
		for _, bs := range []int{2, 4, 16} {
			b, err := formats.BCSRFromCOO(m, bs, bs)
			if err != nil {
				t.Fatal(err)
			}
			gB, _ := SimulateBCSR(grace, b, k)
			aB, _ := SimulateBCSR(aries, b, k)
			if gB.MFLOPS <= aB.MFLOPS {
				t.Errorf("%s: BCSR b=%d should favour Arm (%0.f vs %0.f)",
					name, bs, gB.MFLOPS, aB.MFLOPS)
			}
		}
	}
}

// TestBCSRBlockSizeTrend locks in Study 5's serial trend: bigger blocks do
// increasingly worse.
func TestBCSRBlockSizeTrend(t *testing.T) {
	m, _, err := gen.GenerateScaled("2cubes_sphere", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, prof := range Profiles() {
		var prev float64
		for i, bs := range []int{2, 4, 16} {
			b, err := formats.BCSRFromCOO(m, bs, bs)
			if err != nil {
				t.Fatal(err)
			}
			r, err := SimulateBCSR(prof, b, 128)
			if err != nil {
				t.Fatal(err)
			}
			if i > 0 && r.MFLOPS >= prev {
				t.Errorf("%s: block %d (%0.f MFLOPS) should be slower than the previous size (%0.f)",
					prof.Name, bs, r.MFLOPS, prev)
			}
			prev = r.MFLOPS
		}
	}
}

func TestELLPaddingHurtsHighRatioMatrix(t *testing.T) {
	// torso1-like skew: ELL should fall far behind CSR on the same matrix.
	m, _, err := gen.GenerateScaled("torso1", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	prof := AriesX86()
	csr, _ := SimulateCSR(prof, formats.CSRFromCOO(m), 128)
	ell, _ := SimulateELL(prof, formats.ELLFromCOO(m, formats.RowMajor), 128)
	if ell.MFLOPS >= csr.MFLOPS*0.65 {
		t.Errorf("high-ratio matrix: ELL %0.f should badly trail CSR %0.f", ell.MFLOPS, csr.MFLOPS)
	}
}

func TestRMWRangeMatchesLoadPlusStore(t *testing.T) {
	prof := AriesX86()
	a, _ := New(prof)
	a.LoadRange(1<<20, 512)
	a.StoreRange(1<<20, 512)
	b, _ := New(prof)
	b.RMWRange(1<<20, 512)
	if a.Cycles() != b.Cycles() {
		t.Fatalf("cycles differ: %v vs %v", a.Cycles(), b.Cycles())
	}
	if a.accesses != b.accesses || a.memMiss != b.memMiss {
		t.Fatalf("accounting differs: %d/%d vs %d/%d", a.accesses, a.memMiss, b.accesses, b.memMiss)
	}
}
