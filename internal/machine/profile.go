// Package machine is a CPU cost model used for the thesis' architecture
// study (Study 6), which compares serial single-core kernel performance on
// an Nvidia Grace (Arm) core against an AMD EPYC Milan (x86) core. Since
// this suite runs on a single host, the comparison is reproduced by
// replaying each kernel's memory-access trace through a set-associative
// cache hierarchy plus an issue model, under two architecture profiles.
//
// The profiles encode the structural difference the thesis observed
// (§5.8, §6.1): the x86 core is faster on the irregular, gather-bound
// formats (COO, CSR, ELL) thanks to its lower effective memory latency and
// higher clock, while the Arm core — with four 128-bit SIMD pipes that fit
// small dense blocks exactly — holds the advantage on BCSR's short
// block-structured inner loops.
package machine

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int
	Ways      int
	LineBytes int
	// HitCycles is the access latency when this level hits.
	HitCycles float64
}

// Profile is a single-core architecture model.
type Profile struct {
	Name     string
	ClockGHz float64
	// ScalarIPC is the sustained scalar (bookkeeping) instruction rate.
	ScalarIPC float64
	// FMAPipes and VectorElems give the SIMD configuration: each pipe
	// retires one vector FMA of VectorElems float64 lanes per cycle. A
	// loop whose natural vector length is shorter than VectorElems only
	// fills that many lanes (no cross-iteration packing) — the effect
	// that favours narrow-vector machines on small BCSR blocks.
	FMAPipes    float64
	VectorElems int
	// Caches from closest to farthest; misses in the last level go to
	// memory at MemCycles.
	Caches    []CacheConfig
	MemCycles float64
	// StreamMissCycles is the cost of a memory miss on a streamed
	// (prefetchable) access: bandwidth-bound rather than latency-bound.
	StreamMissCycles float64
	// GatherPenalty is the extra cost per data-dependent (irregular) line — the pipeline exposure a prefetcher cannot cover. Lower on
	// cores with stronger speculative prefetching.
	GatherPenalty float64
}

// GraceArm models one Neoverse-V2 core of the thesis' Grace Hopper machine:
// a very wide core with 4×128-bit SIMD and generous caches, but a higher
// effective DRAM latency (LPDDR5X behind a fabric).
func GraceArm() Profile {
	return Profile{
		Name:        "grace-arm",
		ClockGHz:    3.5,
		ScalarIPC:   5,
		FMAPipes:    4,
		VectorElems: 2, // 128-bit SVE/Neon: two float64 lanes
		Caches: []CacheConfig{
			{SizeBytes: 64 << 10, Ways: 4, LineBytes: 64, HitCycles: 0.9},
			{SizeBytes: 1 << 20, Ways: 8, LineBytes: 64, HitCycles: 9},
			{SizeBytes: 2 << 20, Ways: 16, LineBytes: 64, HitCycles: 28},
		},
		MemCycles:        100,
		StreamMissCycles: 22, // LPDDR5X: ~500 GB/s per Grace socket
		GatherPenalty:    3,
	}
}

// AriesX86 models one EPYC Milan (Zen 3) core of the thesis' Aries machine:
// higher boost clock, 2×256-bit SIMD, and aggressive prefetching giving a
// lower effective memory penalty on streaming/gather code.
func AriesX86() Profile {
	return Profile{
		Name:        "aries-x86",
		ClockGHz:    3.6,
		ScalarIPC:   4,
		FMAPipes:    2,
		VectorElems: 4, // 256-bit AVX2: four float64 lanes
		Caches: []CacheConfig{
			{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, HitCycles: 1},
			{SizeBytes: 512 << 10, Ways: 8, LineBytes: 64, HitCycles: 9},
			{SizeBytes: 4 << 20, Ways: 16, LineBytes: 64, HitCycles: 28},
		},
		MemCycles:        70,
		StreamMissCycles: 42, // DDR4: ~205 GB/s per Milan socket
		GatherPenalty:    0.8,
	}
}

// Profiles returns the two architecture profiles of the study.
func Profiles() []Profile { return []Profile{GraceArm(), AriesX86()} }
