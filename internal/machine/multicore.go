package machine

import (
	"fmt"

	"repro/internal/formats"
	"repro/internal/matrix"
	"repro/internal/parallel"
	tr "repro/internal/trace" // aliased: `trace` names this file's replay callbacks
)

// Multicore extends a single-core Profile to a full socket, modelling the
// thesis' CPU-parallel studies (3, 3.1, 4 and the parallel panels of 1, 2,
// 5 and 8) on hardware this host does not have. A parallel kernel run is
// simulated by tracing each thread's static chunk on a private core
// (its own cache hierarchy) and combining the per-thread cycle counts with
// a scheduling model:
//
//   - chunks are assigned to cores round-robin; a core running two or
//     more chunks executes them on its SMT siblings with a combined
//     throughput of (1 + yield)× a single thread, where the yield is
//     higher for streaming (prefetchable) miss traffic — the workloads
//     SMT actually helps — and lower for gather-bound code;
//   - every active core slows every other through shared-resource
//     contention (L3, memory controllers, cross-socket fabric): cycles
//     inflate by (1 + ContentionPerCore × (activeCores − 1));
//   - socket memory bandwidth caps throughput: the run can never finish
//     faster than the total missed bytes divided by BytesPerCycle;
//   - every parallel region pays a fork/join cost per thread.
//
// These four terms produce the shapes the thesis reports: ~4–6× parallel
// speedup on memory-bound SpMM despite tens of cores, "more threads help"
// on the high-bandwidth Arm socket, and hyperthreading that pays off only
// for some formats on the x86 socket.
type Multicore struct {
	Prof Profile
	// Cores is the number of physical cores.
	Cores int
	// SMTWays is the hardware threads per core (1 = no SMT).
	SMTWays int
	// BytesPerCycle is the socket memory bandwidth in bytes per core
	// clock cycle.
	BytesPerCycle float64
	// ContentionPerCore is the fractional slowdown each additional
	// active core imposes on all others (shared L3/fabric/memory
	// queueing).
	ContentionPerCore float64
	// ForkJoinCycles is the per-thread cost of opening and closing a
	// parallel region.
	ForkJoinCycles float64
	// Trace, when non-nil and enabled, receives simulated-time spans: one
	// sim-chunk span per software thread (its steady-state chunk latency)
	// and one sim-kernel span for the combined region wall time, all on the
	// tracer's simulated timeline.
	Trace *tr.Tracer
}

// GraceMachine models the thesis' Grace Hopper CPU socket: 72 cores, no
// SMT, LPDDR5X bandwidth (~500 GB/s).
func GraceMachine() Multicore {
	return Multicore{
		Prof:              GraceArm(),
		Cores:             72,
		SMTWays:           1,
		BytesPerCycle:     140,
		ContentionPerCore: 0.28,
		ForkJoinCycles:    800,
	}
}

// AriesMachine models the thesis' Aries socket: 2×24 EPYC Milan cores,
// SMT-2 (96 hardware threads), DDR4 bandwidth (~205 GB/s per socket pair).
func AriesMachine() Multicore {
	return Multicore{
		Prof:              AriesX86(),
		Cores:             48,
		SMTWays:           2,
		BytesPerCycle:     57,
		ContentionPerCore: 0.30,
		ForkJoinCycles:    1200,
	}
}

// Machines returns the two socket models of the study.
func Machines() []Multicore { return []Multicore{GraceMachine(), AriesMachine()} }

// Validate reports configuration problems.
func (mc Multicore) Validate() error {
	if mc.Cores < 1 || mc.SMTWays < 1 || mc.BytesPerCycle <= 0 || mc.ForkJoinCycles < 0 ||
		mc.ContentionPerCore < 0 {
		return fmt.Errorf("machine: invalid multicore config %+v", mc)
	}
	return nil
}

// chunkTrace replays one thread's chunk [lo, hi) on machine m, returning
// the nonzeros it processed.
type chunkTrace func(m *Machine, lo, hi int) int

// chunkBounds is OpenMP static scheduling: near-equal contiguous chunks.
func chunkBounds(n, chunks, i int) (lo, hi int) {
	base := n / chunks
	rem := n % chunks
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

// simulateParallel runs the trace over [0, n) split into `threads` static
// chunks and combines the per-thread costs per the scheduling model.
func (mc Multicore) simulateParallel(n, threads, k int, trace chunkTrace) (Result, error) {
	if threads < 1 {
		return Result{}, fmt.Errorf("machine: threads %d < 1", threads)
	}
	if threads > n && n > 0 {
		threads = n
	}
	bounds := make([]int, threads+1)
	for w := 0; w < threads; w++ {
		lo, hi := chunkBounds(n, threads, w)
		bounds[w], bounds[w+1] = lo, hi
	}
	return mc.simulateParallelBounds(bounds, k, trace)
}

// simulateParallelBounds runs the trace over explicit chunk bounds
// (bounds[w], bounds[w+1]) — static or nonzero-balanced — and combines the
// per-chunk costs per the scheduling model. The chunk count plays the role
// of the thread count: one software thread per chunk, placed round-robin
// on the physical cores.
func (mc Multicore) simulateParallelBounds(bounds []int, k int, trace chunkTrace) (Result, error) {
	if err := mc.Validate(); err != nil {
		return Result{}, err
	}
	threads := len(bounds) - 1
	if threads < 1 {
		return Result{}, fmt.Errorf("machine: bounds describe %d chunks", threads)
	}
	coreLoad := make([]float64, min(threads, mc.Cores))
	coreChunks := make([]int, len(coreLoad))
	var (
		totalMemBytes   float64
		totalAccesses   int64
		totalMisses     int64
		totalStreamMiss int64
		nnz             int
	)
	simStart := mc.Trace.SimNow()
	for w := 0; w < threads; w++ {
		lo, hi := bounds[w], bounds[w+1]
		m, err := New(mc.Prof)
		if err != nil {
			return Result{}, err
		}
		// The benchmark runner measures warmed repetitions (warm-up plus
		// p.Reps timed calls), so the steady-state pass is what counts:
		// trace once to warm the thread's caches, then measure the second
		// pass. This is also what makes high thread counts win on real
		// hardware — small chunks become cache-resident.
		trace(m, lo, hi)
		m.ResetCosts()
		nnz += trace(m, lo, hi)
		core := w % len(coreLoad)
		coreLoad[core] += m.Cycles()
		coreChunks[core]++
		if mc.Trace.Enabled() {
			// Chunk spans share the region's simulated start (the model runs
			// them concurrently) and carry the chunk's pre-contention
			// latency; the region span below carries the combined wall.
			chunkNs := int64(m.Cycles() / (mc.Prof.ClockGHz * 1e9) * 1e9)
			mc.Trace.AddSim(w+1, tr.PhaseSimChunk, mc.Prof.Name, simStart, chunkNs, int64(hi-lo))
		}
		totalMemBytes += float64(m.memMiss) * float64(m.lineBytes())
		totalAccesses += m.accesses
		totalMisses += m.memMiss
		totalStreamMiss += m.memMissStream
		m.flushObs()
	}

	missRate := 0.0
	if totalAccesses > 0 {
		missRate = float64(totalMisses) / float64(totalAccesses)
	}
	streamShare := 0.0
	if totalMisses > 0 {
		streamShare = float64(totalStreamMiss) / float64(totalMisses)
	}
	// SMT siblings yield more on streaming miss traffic (latency hiding
	// with predictable addresses); gather-bound code shares poorly.
	smtYield := 0.1 + 0.5*streamShare

	// A core with co-resident threads runs their combined cycles at
	// (1 + yield)× single-thread throughput (only when the hardware has
	// SMT siblings to run them on).
	wallLatency := 0.0
	for core, load := range coreLoad {
		t := load
		if coreChunks[core] > 1 && mc.SMTWays > 1 {
			t = load / (1 + smtYield)
		}
		if t > wallLatency {
			wallLatency = t
		}
	}
	active := float64(len(coreLoad))
	wallLatency *= 1 + mc.ContentionPerCore*(active-1)

	bandwidth := totalMemBytes / mc.BytesPerCycle
	wall := max(wallLatency, bandwidth) + mc.ForkJoinCycles*float64(threads)
	secs := wall / (mc.Prof.ClockGHz * 1e9)
	if mc.Trace.Enabled() {
		wallNs := int64(secs * 1e9)
		if wallNs < 1 {
			wallNs = 1
		}
		mc.Trace.AddSim(0, tr.PhaseSimKernel, mc.Prof.Name, simStart, wallNs, int64(nnz))
		mc.Trace.SimAdvance(wallNs)
	}
	return resultFor(mc.Prof.Name, secs, wall, nnz, k, missRate), nil
}

// COOParallel simulates the parallel COO kernel with static nonzero
// partitioning.
func (mc Multicore) COOParallel(a *matrix.COO[float64], k, threads int) (Result, error) {
	return mc.simulateParallel(a.NNZ(), threads, k, func(m *Machine, lo, hi int) int {
		return traceCOO(m, a, k, lo, hi)
	})
}

// CSRParallel simulates the parallel CSR kernel with static row chunks.
func (mc Multicore) CSRParallel(a *formats.CSR[float64], k, threads int) (Result, error) {
	return mc.simulateParallel(a.Rows, threads, k, func(m *Machine, lo, hi int) int {
		return traceCSR(m, a, k, lo, hi)
	})
}

// CSRParallelBalanced simulates the parallel CSR kernel under the
// nonzero-balanced schedule: chunk boundaries come from
// parallel.BalancedBounds over the row-pointer prefix sums, so every chunk
// carries a near-equal share of the nonzeros instead of a near-equal share
// of the rows. On row-skewed matrices this is what keeps the slowest core —
// which sets the simulated wall clock — from owning the hub rows alone.
func (mc Multicore) CSRParallelBalanced(a *formats.CSR[float64], k, threads int) (Result, error) {
	if threads < 1 {
		return Result{}, fmt.Errorf("machine: threads %d < 1", threads)
	}
	bounds := parallel.BalancedBounds(a.RowPtr, threads)
	return mc.simulateParallelBounds(bounds, k, func(m *Machine, lo, hi int) int {
		return traceCSR(m, a, k, lo, hi)
	})
}

// ELLParallel simulates the parallel ELLPACK kernel with static row chunks.
func (mc Multicore) ELLParallel(a *formats.ELL[float64], k, threads int) (Result, error) {
	return mc.simulateParallel(a.Rows, threads, k, func(m *Machine, lo, hi int) int {
		return traceELL(m, a, k, lo, hi)
	})
}

// BCSRParallel simulates the parallel BCSR kernel with static block-row
// chunks.
func (mc Multicore) BCSRParallel(a *formats.BCSR[float64], k, threads int) (Result, error) {
	return mc.simulateParallel(a.BlockRows, threads, k, func(m *Machine, lo, hi int) int {
		return traceBCSR(m, a, k, lo, hi)
	})
}

// COOParallelT, CSRParallelT, ELLParallelT and BCSRParallelT simulate the
// transposed-B parallel kernels of Study 8. The transposition of B itself
// is charged once (it is parallelisable, so it is divided by the effective
// parallelism like any chunk — here approximated by tracing it on thread
// 0's machine).

func (mc Multicore) CSRParallelT(a *formats.CSR[float64], k, threads int) (Result, error) {
	first := true
	return mc.simulateParallel(a.Rows, threads, k, func(m *Machine, lo, hi int) int {
		if first {
			first = false
			traceTransposeB(m, a.Cols, k)
		}
		return traceCSRT(m, a, k, lo, hi)
	})
}

func (mc Multicore) COOParallelT(a *matrix.COO[float64], k, threads int) (Result, error) {
	first := true
	return mc.simulateParallel(a.NNZ(), threads, k, func(m *Machine, lo, hi int) int {
		if first {
			first = false
			traceTransposeB(m, a.Cols, k)
		}
		return traceCOOT(m, a, k, lo, hi)
	})
}

func (mc Multicore) ELLParallelT(a *formats.ELL[float64], k, threads int) (Result, error) {
	first := true
	return mc.simulateParallel(a.Rows, threads, k, func(m *Machine, lo, hi int) int {
		if first {
			first = false
			traceTransposeB(m, a.Cols, k)
		}
		return traceELLT(m, a, k, lo, hi)
	})
}

func (mc Multicore) BCSRParallelT(a *formats.BCSR[float64], k, threads int) (Result, error) {
	first := true
	return mc.simulateParallel(a.BlockRows, threads, k, func(m *Machine, lo, hi int) int {
		if first {
			first = false
			traceTransposeB(m, a.Cols, k)
		}
		return traceBCSRT(m, a, k, lo, hi)
	})
}
