package kernels

import (
	"repro/internal/formats"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// This file is the scheduling layer of the parallel kernels: every
// row-partitioned format gets an Opts variant selecting the work partition
// (row-static, as the thesis' OpenMP baseline, or nonzero-balanced) and the
// execution machinery (fresh goroutines per call or a persistent pool). The
// plain *Parallel entry points stay exactly as the thesis measures them;
// the Opts variants are the optimisation study on top.

// Schedule selects how a parallel kernel partitions its rows over workers.
type Schedule int

const (
	// ScheduleStatic splits rows into equal-count contiguous chunks —
	// OpenMP schedule(static), the thesis' baseline. Best when row lengths
	// are uniform (ELL-friendly matrices).
	ScheduleStatic Schedule = iota
	// ScheduleBalanced splits rows into equal-nonzero contiguous chunks
	// read off the format's prefix-sum array (merge-path style). Best for
	// skewed (power-law) matrices whose heavy rows serialise a static
	// partition. The split is memoized on the format, so steady-state
	// calls pay nothing for it.
	ScheduleBalanced
)

// String returns the flag spelling of the schedule.
func (s Schedule) String() string {
	if s == ScheduleBalanced {
		return "balanced"
	}
	return "static"
}

// Opts selects the execution machinery of a parallel kernel variant. The
// zero value reproduces the plain Parallel kernel: static schedule, fresh
// goroutines per call.
type Opts struct {
	Schedule Schedule
	// Pool, when non-nil, runs the chunks on the persistent worker pool
	// instead of spawning goroutines per call.
	Pool *parallel.Pool
	// Trace, when non-nil and enabled, receives one "kernel" span per Opts
	// dispatch (lane 0, detail = format, arg = thread count). Per-worker
	// chunk spans come from internal/parallel's own hook, not from here.
	Trace *trace.Tracer
}

// CSRParallelOpts is CSRParallel under the given scheduling options.
// Balanced scheduling partitions rows by nonzero count from the memoized
// CSR prefix-sum splits; results are bitwise identical to CSRSerial for
// every option combination (only the partition changes, never the
// per-element accumulation order).
func CSRParallelOpts[T matrix.Float](a *formats.CSR[T], b, c *matrix.Dense[T], k, threads int, o Opts) error {
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	e := parallel.Exec{Pool: o.Pool}
	if o.Schedule == ScheduleBalanced {
		e.Bounds = a.BalancedBounds(threads)
	}
	obsDispatchCSR.Inc()
	obsRows.Add(int64(a.Rows))
	obsNonzeros.Add(int64(a.NNZ()))
	recordCSRImbalance(a.RowPtr, a.Rows, threads, e.Bounds)
	span := o.Trace.Start()
	e.Run(a.Rows, threads, func(lo, hi, _ int) {
		csrRows(a, b, c, k, lo, hi)
	})
	o.Trace.EndDetail(0, trace.PhaseKernel, "csr", span, int64(threads))
	return nil
}

// BCSRParallelOpts is BCSRParallel under the given scheduling options;
// balanced scheduling equalises stored blocks per worker.
func BCSRParallelOpts[T matrix.Float](a *formats.BCSR[T], b, c *matrix.Dense[T], k, threads int, o Opts) error {
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	e := parallel.Exec{Pool: o.Pool}
	if o.Schedule == ScheduleBalanced {
		e.Bounds = a.BalancedBounds(threads)
	}
	obsDispatchBCSR.Inc()
	obsRows.Add(int64(a.BlockRows))
	span := o.Trace.Start()
	e.Run(a.BlockRows, threads, func(lo, hi, _ int) {
		bcsrBlockRows(a, b, c, k, lo, hi)
	})
	o.Trace.EndDetail(0, trace.PhaseKernel, "bcsr", span, int64(threads))
	return nil
}

// SELLCSParallelOpts is SELLCSParallel under the given scheduling options;
// balanced scheduling equalises stored (padded) elements per worker, read
// off SlicePtr.
func SELLCSParallelOpts[T matrix.Float](a *formats.SELLCS[T], b, c *matrix.Dense[T], k, threads int, o Opts) error {
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	e := parallel.Exec{Pool: o.Pool}
	if o.Schedule == ScheduleBalanced {
		e.Bounds = a.BalancedBounds(threads)
	}
	obsDispatchSELLCS.Inc()
	obsRows.Add(int64(a.NumSlices()))
	span := o.Trace.Start()
	e.Run(a.NumSlices(), threads, func(lo, hi, _ int) {
		sellSlices(a, b, c, k, lo, hi)
	})
	o.Trace.EndDetail(0, trace.PhaseKernel, "sellcs", span, int64(threads))
	return nil
}

// ELLParallelOpts is ELLParallel under the given scheduling options. ELL
// rows all store exactly Width slots, so the static partition is already
// nonzero-balanced — ScheduleBalanced is accepted and means the same thing.
// The pool option still applies.
func ELLParallelOpts[T matrix.Float](a *formats.ELL[T], b, c *matrix.Dense[T], k, threads int, o Opts) error {
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	e := parallel.Exec{Pool: o.Pool}
	obsDispatchELL.Inc()
	obsRows.Add(int64(a.Rows))
	span := o.Trace.Start()
	e.Run(a.Rows, threads, func(lo, hi, _ int) {
		ellRows(a, b, c, k, lo, hi)
	})
	o.Trace.EndDetail(0, trace.PhaseKernel, "ell", span, int64(threads))
	return nil
}

// BELLParallelOpts is BELLParallel under the given scheduling options. Like
// ELL, every block row stores exactly Width blocks, so static already is
// balanced; only the pool option changes the machinery.
func BELLParallelOpts[T matrix.Float](a *formats.BELL[T], b, c *matrix.Dense[T], k, threads int, o Opts) error {
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	e := parallel.Exec{Pool: o.Pool}
	obsDispatchBELL.Inc()
	obsRows.Add(int64(a.BlockRows))
	span := o.Trace.Start()
	e.Run(a.BlockRows, threads, func(lo, hi, _ int) {
		bellBlockRows(a, b, c, k, lo, hi)
	})
	o.Trace.EndDetail(0, trace.PhaseKernel, "bell", span, int64(threads))
	return nil
}

// COOParallelOpts is COOParallel under the given scheduling options. The
// COO partition is already nonzero-balanced by construction (triplets split
// at row boundaries), so the schedule option changes nothing; the pool
// option reuses warmed workers for both the zeroing and accumulation
// passes.
func COOParallelOpts[T matrix.Float](a *matrix.COO[T], b, c *matrix.Dense[T], k, threads int, o Opts) error {
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	bounds := cooRowPartition(a, threads)
	chunks := len(bounds) - 1
	obsDispatchCOO.Inc()
	obsRows.Add(int64(a.Rows))
	obsNonzeros.Add(int64(a.NNZ()))
	span := o.Trace.Start()
	e := parallel.Exec{Pool: o.Pool}
	e.Run(c.Rows, threads, func(lo, hi, _ int) {
		zeroKRows(c, k, lo, hi)
	})
	be := parallel.Exec{Pool: o.Pool, Bounds: bounds}
	be.Run(a.NNZ(), chunks, func(plo, phi, _ int) {
		for p := plo; p < phi; p++ {
			r := int(a.RowIdx[p])
			col := int(a.ColIdx[p])
			axpy(c.Data[r*c.Stride:], b.Data[col*b.Stride:], a.Vals[p], k)
		}
	})
	o.Trace.EndDetail(0, trace.PhaseKernel, "coo", span, int64(threads))
	return nil
}
