package kernels

import (
	"context"

	"repro/internal/matrix"
	"repro/internal/parallel"
)

// COOSerial computes C[:, :k] = A × B[:, :k] with A in COO form. This is
// also the suite's verification kernel, as in the thesis (§4.3).
func COOSerial[T matrix.Float](a *matrix.COO[T], b, c *matrix.Dense[T], k int) error {
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	zeroK(c, k)
	for p := range a.Vals {
		r := int(a.RowIdx[p])
		col := int(a.ColIdx[p])
		axpy(c.Data[r*c.Stride:], b.Data[col*b.Stride:], a.Vals[p], k)
	}
	return nil
}

// COOSerialCtx is COOSerial with cooperative cancellation: the triplet loop
// checks ctx every cancelStride entries and returns ctx.Err() early, leaving
// C partially accumulated. A nil ctx behaves exactly like COOSerial.
func COOSerialCtx[T matrix.Float](ctx context.Context, a *matrix.COO[T], b, c *matrix.Dense[T], k int) error {
	if ctx == nil {
		return COOSerial(a, b, c, k)
	}
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	zeroK(c, k)
	nnz := a.NNZ()
	for lo := 0; lo < nnz; lo += cancelStride {
		if err := ctx.Err(); err != nil {
			return err
		}
		for p := lo; p < min(lo+cancelStride, nnz); p++ {
			r := int(a.RowIdx[p])
			col := int(a.ColIdx[p])
			axpy(c.Data[r*c.Stride:], b.Data[col*b.Stride:], a.Vals[p], k)
		}
	}
	return ctx.Err()
}

// COOParallelCtx is COOParallel with cooperative cancellation: each worker
// checks ctx every cancelStride triplets inside its row-aligned chunk. The
// partition is identical to COOParallel's, so timings stay comparable.
func COOParallelCtx[T matrix.Float](ctx context.Context, a *matrix.COO[T], b, c *matrix.Dense[T], k, threads int) error {
	if ctx == nil {
		return COOParallel(a, b, c, k, threads)
	}
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	bounds := cooRowPartition(a, threads)
	chunks := len(bounds) - 1
	if err := parallel.ForCtx(ctx, c.Rows, threads, func(lo, hi, _ int) {
		zeroKRows(c, k, lo, hi)
	}); err != nil {
		return err
	}
	return parallel.ForCtx(ctx, chunks, chunks, func(wlo, whi, _ int) {
		for w := wlo; w < whi; w++ {
			for p := bounds[w]; p < bounds[w+1]; p++ {
				if (p-bounds[w])%cancelStride == 0 && ctx.Err() != nil {
					return
				}
				r := int(a.RowIdx[p])
				col := int(a.ColIdx[p])
				axpy(c.Data[r*c.Stride:], b.Data[col*b.Stride:], a.Vals[p], k)
			}
		}
	})
}

// cooRowPartition splits [0, nnz) into up to `threads` chunks whose
// boundaries fall on row boundaries, so concurrent workers never write the
// same C row. It requires a row-major sorted matrix. A row longer than a
// fair share simply makes its owner's chunk larger (the load imbalance the
// thesis observes for high-column-ratio matrices).
func cooRowPartition[T matrix.Float](a *matrix.COO[T], threads int) []int {
	nnz := a.NNZ()
	bounds := make([]int, 0, threads+1)
	bounds = append(bounds, 0)
	for w := 1; w < threads; w++ {
		_, cut := parallel.ChunkBounds(nnz, threads, w-1)
		// Advance the cut to the next row boundary.
		for cut < nnz && cut > 0 && a.RowIdx[cut] == a.RowIdx[cut-1] {
			cut++
		}
		if cut <= bounds[len(bounds)-1] {
			continue // previous chunk swallowed this one
		}
		bounds = append(bounds, cut)
	}
	if bounds[len(bounds)-1] != nnz {
		bounds = append(bounds, nnz)
	}
	return bounds
}

// COOParallel computes C[:, :k] = A × B[:, :k] with the triplets divided
// over `threads` workers at row boundaries. A must be sorted row-major
// (format conversion guarantees this).
func COOParallel[T matrix.Float](a *matrix.COO[T], b, c *matrix.Dense[T], k, threads int) error {
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	bounds := cooRowPartition(a, threads)
	chunks := len(bounds) - 1
	parallel.For(c.Rows, threads, func(lo, hi, _ int) {
		zeroKRows(c, k, lo, hi)
	})
	parallel.For(chunks, chunks, func(wlo, whi, _ int) {
		for w := wlo; w < whi; w++ {
			for p := bounds[w]; p < bounds[w+1]; p++ {
				r := int(a.RowIdx[p])
				col := int(a.ColIdx[p])
				axpy(c.Data[r*c.Stride:], b.Data[col*b.Stride:], a.Vals[p], k)
			}
		}
	})
	return nil
}

// COOParallelReplicated is the ablation alternative to COOParallel: each
// worker takes an arbitrary (not row-aligned) slice of triplets, accumulates
// into a private copy of C, and the copies are reduced at the end. It
// tolerates unsorted input but pays threads×(m×k) extra memory and a
// reduction pass.
func COOParallelReplicated[T matrix.Float](a *matrix.COO[T], b, c *matrix.Dense[T], k, threads int) error {
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	if threads < 1 {
		threads = 1
	}
	nnz := a.NNZ()
	if threads > nnz {
		threads = max(nnz, 1)
	}
	zeroK(c, k)
	if threads == 1 {
		return COOSerial(a, b, c, k)
	}
	privs := make([]*matrix.Dense[T], threads)
	parallel.For(threads, threads, func(wlo, whi, _ int) {
		for w := wlo; w < whi; w++ {
			priv := matrix.NewDense[T](c.Rows, k)
			privs[w] = priv
			lo, hi := parallel.ChunkBounds(nnz, threads, w)
			for p := lo; p < hi; p++ {
				r := int(a.RowIdx[p])
				col := int(a.ColIdx[p])
				axpy(priv.Data[r*priv.Stride:], b.Data[col*b.Stride:], a.Vals[p], k)
			}
		}
	})
	// Reduce, parallel over rows.
	parallel.For(c.Rows, threads, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			crow := c.Data[i*c.Stride : i*c.Stride+k]
			for _, priv := range privs {
				prow := priv.Data[i*priv.Stride : i*priv.Stride+k]
				for j := range crow {
					crow[j] += prow[j]
				}
			}
		}
	})
	return nil
}

// COOSerialT computes C[:, :k] = A × B[:, :k] given bt, the transpose of B
// (kb×n). Study 8 measures whether transposed access to B pays off.
func COOSerialT[T matrix.Float](a *matrix.COO[T], bt, c *matrix.Dense[T], k int) error {
	if err := checkSpMMT(a.Rows, a.Cols, bt, c, k); err != nil {
		return err
	}
	zeroK(c, k)
	for p := range a.Vals {
		r := int(a.RowIdx[p])
		col := int(a.ColIdx[p])
		v := a.Vals[p]
		crow := c.Data[r*c.Stride : r*c.Stride+k]
		for j := range crow {
			crow[j] += v * bt.Data[j*bt.Stride+col]
		}
	}
	return nil
}

// COOParallelT is the parallel transposed-B COO kernel.
func COOParallelT[T matrix.Float](a *matrix.COO[T], bt, c *matrix.Dense[T], k, threads int) error {
	if err := checkSpMMT(a.Rows, a.Cols, bt, c, k); err != nil {
		return err
	}
	bounds := cooRowPartition(a, threads)
	chunks := len(bounds) - 1
	parallel.For(c.Rows, threads, func(lo, hi, _ int) {
		zeroKRows(c, k, lo, hi)
	})
	parallel.For(chunks, chunks, func(wlo, whi, _ int) {
		for w := wlo; w < whi; w++ {
			for p := bounds[w]; p < bounds[w+1]; p++ {
				r := int(a.RowIdx[p])
				col := int(a.ColIdx[p])
				v := a.Vals[p]
				crow := c.Data[r*c.Stride : r*c.Stride+k]
				for j := range crow {
					crow[j] += v * bt.Data[j*bt.Stride+col]
				}
			}
		}
	})
	return nil
}

// COOSpMV computes y = A × x with A in COO form.
func COOSpMV[T matrix.Float](a *matrix.COO[T], x, y []T) error {
	if err := checkSpMV(a.Rows, a.Cols, x, y); err != nil {
		return err
	}
	clear(y)
	for p := range a.Vals {
		y[a.RowIdx[p]] += a.Vals[p] * x[a.ColIdx[p]]
	}
	return nil
}

// COOSpMVParallel computes y = A × x with row-partitioned workers; A must
// be sorted row-major.
func COOSpMVParallel[T matrix.Float](a *matrix.COO[T], x, y []T, threads int) error {
	if err := checkSpMV(a.Rows, a.Cols, x, y); err != nil {
		return err
	}
	clear(y)
	bounds := cooRowPartition(a, threads)
	chunks := len(bounds) - 1
	parallel.For(chunks, chunks, func(wlo, whi, _ int) {
		for w := wlo; w < whi; w++ {
			for p := bounds[w]; p < bounds[w+1]; p++ {
				y[a.RowIdx[p]] += a.Vals[p] * x[a.ColIdx[p]]
			}
		}
	})
	return nil
}
