// Package kernels implements the sparse-dense matrix multiplication (SpMM)
// kernels of the benchmark suite: for every format a serial, a CPU-parallel,
// and transposed-B variants, plus the fixed-k specialised kernels of the
// manual-optimisation study and the SpMV kernels the thesis lists as future
// work (§6.3.4).
//
// Every SpMM kernel computes C[:, :k] = A × B[:, :k] for a sparse m×n A and
// dense n×kb B (kb >= k), overwriting the first k columns of C. The "k loop"
// bound is the runtime parameter Study 4 sweeps; kernels in fixedk.go embed
// it at compile time instead, mirroring the thesis' C++ template trick.
package kernels

import (
	"errors"
	"fmt"

	"repro/internal/matrix"
)

// ErrShape is returned when operand dimensions are inconsistent.
var ErrShape = errors.New("kernels: operand shape mismatch")

// cancelStride is how many rows (or triplets) a cancellation-aware kernel
// processes between context checks: small enough to cancel within
// microseconds of work, large enough that the atomic load disappears in
// the row loop's cost.
const cancelStride = 1024

// ErrUnsupportedK is returned by fixed-k kernels when no specialisation
// exists for the requested k.
var ErrUnsupportedK = errors.New("kernels: no fixed-k specialisation for this k")

// tileK is the dense-column panel width of the k-tiled row loops. Beyond
// this width a row's B traffic no longer fits the L1/L2 working set, so the
// kernels process B in panels of tileK columns, keeping each panel hot
// across a whole row band before moving right. One float64 panel row is
// 1 KiB — 16 cache lines — so a band of A rows reuses it from cache instead
// of streaming all of B per row. Panels only change the j-loop order, never
// the per-element accumulation order over nonzeros, so tiled results are
// bitwise identical to the untiled kernels.
const tileK = 128

// SpMMFlops returns the floating-point operation count of one SpMM with the
// given nonzero count and k: one multiply and one add per (nonzero, column)
// pair. This is the basis of every MFLOPS figure the suite reports,
// matching the thesis' metric (§4.3).
func SpMMFlops(nnz, k int) float64 { return 2 * float64(nnz) * float64(k) }

// SpMVFlops returns the operation count of one SpMV.
func SpMVFlops(nnz int) float64 { return 2 * float64(nnz) }

// checkSpMM validates C[:, :k] = A(ar×ac) × B[:, :k].
func checkSpMM[T matrix.Float](ar, ac int, b, c *matrix.Dense[T], k int) error {
	switch {
	case k < 0:
		return fmt.Errorf("%w: negative k=%d", ErrShape, k)
	case b.Rows != ac:
		return fmt.Errorf("%w: A is %dx%d but B has %d rows", ErrShape, ar, ac, b.Rows)
	case k > b.Cols:
		return fmt.Errorf("%w: k=%d exceeds B's %d columns", ErrShape, k, b.Cols)
	case c.Rows != ar:
		return fmt.Errorf("%w: A has %d rows but C has %d", ErrShape, ar, c.Rows)
	case k > c.Cols:
		return fmt.Errorf("%w: k=%d exceeds C's %d columns", ErrShape, k, c.Cols)
	}
	return nil
}

// checkSpMMT validates C[:, :k] = A(ar×ac) × Bᵀ[:, :k] where bt is the
// kb×n transpose of B.
func checkSpMMT[T matrix.Float](ar, ac int, bt, c *matrix.Dense[T], k int) error {
	switch {
	case k < 0:
		return fmt.Errorf("%w: negative k=%d", ErrShape, k)
	case bt.Cols != ac:
		return fmt.Errorf("%w: A is %dx%d but Bᵀ has %d columns", ErrShape, ar, ac, bt.Cols)
	case k > bt.Rows:
		return fmt.Errorf("%w: k=%d exceeds Bᵀ's %d rows", ErrShape, k, bt.Rows)
	case c.Rows != ar:
		return fmt.Errorf("%w: A has %d rows but C has %d", ErrShape, ar, c.Rows)
	case k > c.Cols:
		return fmt.Errorf("%w: k=%d exceeds C's %d columns", ErrShape, k, c.Cols)
	}
	return nil
}

// checkSpMV validates y = A(ar×ac) × x.
func checkSpMV[T matrix.Float](ar, ac int, x, y []T) error {
	switch {
	case len(x) != ac:
		return fmt.Errorf("%w: A is %dx%d but x has %d entries", ErrShape, ar, ac, len(x))
	case len(y) != ar:
		return fmt.Errorf("%w: A has %d rows but y has %d entries", ErrShape, ar, len(y))
	}
	return nil
}

// zeroK zeroes the first k columns of every row of c.
func zeroK[T matrix.Float](c *matrix.Dense[T], k int) {
	for i := 0; i < c.Rows; i++ {
		clear(c.Data[i*c.Stride : i*c.Stride+k])
	}
}

// zeroKRows zeroes the first k columns of rows [lo, hi) of c.
func zeroKRows[T matrix.Float](c *matrix.Dense[T], k, lo, hi int) {
	for i := lo; i < hi; i++ {
		clear(c.Data[i*c.Stride : i*c.Stride+k])
	}
}

// axpy computes c[j] += v * b[j] for j in [0, k). It is the inner loop of
// every row-oriented SpMM kernel; the full-slice re-expressions pin both
// length and capacity so the compiler elides every bounds check in the loop.
func axpy[T matrix.Float](c, b []T, v T, k int) {
	c = c[:k:k]
	b = b[:k:k]
	for j := range c {
		c[j] += v * b[j]
	}
}

// GEMM computes the dense product C = A × B naively. It exists for
// small-scale verification in tests; the benchmark suite itself verifies
// against the COO kernel, as the thesis does (§4.3: a pure dense
// verification "took too long").
func GEMM[T matrix.Float](a, b, c *matrix.Dense[T]) error {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		return fmt.Errorf("%w: GEMM %dx%d * %dx%d -> %dx%d",
			ErrShape, a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols)
	}
	c.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for l, av := range arow {
			if av == 0 {
				continue
			}
			axpy(crow, b.Row(l), av, c.Cols)
		}
	}
	return nil
}
