package kernels

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"math"
	"math/rand"
	"regexp"
	"strings"
	"testing"

	"repro/internal/matrix"
	"repro/internal/parallel"
)

// The differential sweep: every registered kernel variant (serial, parallel,
// pooled, balanced, transposed-B, fixed-k, every format) runs against the
// dense GEMM reference on five structurally adversarial matrix classes.
// Variants whose accumulation order matches the serial per-element order
// must agree bit for bit; the reassociating variants (private-accumulator
// reductions) must agree within one ULP of the accumulated magnitude per
// partial sum — the tightest bound reassociation admits, since an element
// whose terms cancel can legitimately sit many result-ULPs away while still
// being correctly rounded at the magnitude it was summed at. A go/parser
// completeness
// check closes the loop: an exported SpMM kernel that is not in the registry
// fails the test, so new variants cannot dodge the sweep.

// sweepK is a multiple of 8 so the fixed-k specialisations participate, and
// above 8 so the tiled panel chaining (16 = 8+8) is exercised too.
const sweepK = 16

const sweepThreads = 4

// sweepMatrices builds the five matrix classes of the sweep. All are small
// enough that the whole registry runs in well under a second.
func sweepMatrices() map[string]*matrix.COO[float64] {
	random := matrix.NewCOO[float64](40, 31, 0)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 260; i++ {
		random.Append(int32(rng.Intn(40)), int32(rng.Intn(31)), rng.NormFloat64())
	}
	random.Dedup()

	// Rows 0, 5, 10, ... stay empty, including the first and last row —
	// the zero-row-length edge every partitioner must step over.
	empty := matrix.NewCOO[float64](45, 23, 0)
	for i := 0; i < 200; i++ {
		r := int32(rng.Intn(45))
		if r%5 == 0 {
			continue
		}
		empty.Append(r, int32(rng.Intn(23)), rng.NormFloat64())
	}
	empty.Dedup()

	// Every nonzero in one interior row: the degenerate imbalance that
	// collapses the row-aligned COO partition to a single chunk.
	single := matrix.NewCOO[float64](50, 29, 0)
	for j := 0; j < 29; j += 2 {
		single.Append(17, int32(j), rng.NormFloat64())
	}
	single.Dedup()

	return map[string]*matrix.COO[float64]{
		"random":     random,
		"power-law":  powerLawCOO(120, 60, 7),
		"empty-row":  empty,
		"single-row": single,
		"all-zero":   matrix.NewCOO[float64](30, 17, 0),
	}
}

// eps is the float64 machine epsilon: one ULP at magnitude 1.
const eps = 0x1p-52

// sumAbsRef returns Σ|a[i,l]·b[l,j]| per output element — the accumulated
// magnitude each C element was summed at. One ULP at that magnitude,
// per reassociation boundary, is the error budget of the non-bitwise
// variants: splitting a sum into t partials moves the result by at most
// about t·eps·Σ|terms| regardless of how the terms cancel.
func sumAbsRef(t *testing.T, coo *matrix.COO[float64], b *matrix.Dense[float64], k int) *matrix.Dense[float64] {
	absA := coo.ToDense()
	for i := range absA.Data {
		absA.Data[i] = math.Abs(absA.Data[i])
	}
	absB := b.Clone()
	for i := range absB.Data {
		absB.Data[i] = math.Abs(absB.Data[i])
	}
	out := matrix.NewDense[float64](coo.Rows, k)
	if err := GEMM(absA, absB, out); err != nil {
		t.Fatalf("abs reference: %v", err)
	}
	return out
}

func TestDifferentialSweep(t *testing.T) {
	pool := parallel.NewPool(sweepThreads)
	defer pool.Close()
	variants := Variants()
	for class, coo := range sweepMatrices() {
		in, err := NewVariantInput(coo, sweepK, sweepThreads, 3, 4, 8, 21)
		if err != nil {
			t.Fatalf("%s: fixture: %v", class, err)
		}
		in.Pool = pool

		ref := matrix.NewDense[float64](coo.Rows, sweepK)
		if err := GEMM(coo.ToDense(), in.B, ref); err != nil {
			t.Fatalf("%s: reference: %v", class, err)
		}
		sumAbs := sumAbsRef(t, coo, in.B, sweepK)

		for _, v := range variants {
			t.Run(class+"/"+v.Name, func(t *testing.T) {
				out := matrix.NewDense[float64](coo.Rows, sweepK)
				for i := range out.Data {
					out.Data[i] = 1e301 // poison: the kernel must overwrite
				}
				if err := v.Run(in, out); err != nil {
					t.Fatalf("run: %v", err)
				}
				for i := 0; i < coo.Rows; i++ {
					for j := 0; j < sweepK; j++ {
						got, want := out.At(i, j), ref.At(i, j)
						if v.Bitwise {
							if math.Float64bits(got) != math.Float64bits(want) {
								t.Fatalf("C[%d,%d] = %v (%#x), dense reference %v (%#x): bitwise contract broken",
									i, j, got, math.Float64bits(got), want, math.Float64bits(want))
							}
						} else if tol := float64(sweepThreads+1) * eps * sumAbs.At(i, j); math.Abs(got-want) > tol {
							t.Fatalf("C[%d,%d] = %v, dense reference %v: off by %g, tolerance %g (1 ULP at accumulated magnitude %g per partial sum)",
								i, j, got, want, math.Abs(got-want), tol, sumAbs.At(i, j))
						}
					}
				}
			})
		}
	}
}

// kernelFuncPattern matches the exported SpMM kernel entry points: a format
// prefix followed by a machinery suffix. SpMV kernels, flops helpers and
// the dense GEMM reference are outside the sweep's scope.
var kernelFuncPattern = regexp.MustCompile(`^(COO|CSR|CSC|ELL|BCSR|BELL|SELLCS)[A-Za-z]*$`)

// TestVariantRegistryComplete parses the package source and cross-checks
// the declared kernel entry points against the registry, in both
// directions: an exported kernel missing from the registry fails (adding a
// variant without sweep coverage is a test failure), and a registry Func
// naming no declared function fails (catches renames and typos).
func TestVariantRegistryComplete(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	declared := map[string]bool{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv != nil || !fd.Name.IsExported() {
					continue
				}
				name := fd.Name.Name
				if kernelFuncPattern.MatchString(name) && !strings.Contains(name, "SpMV") {
					declared[name] = false // not yet seen in the registry
				}
			}
		}
	}
	if len(declared) == 0 {
		t.Fatal("parsed no kernel entry points — pattern or directory wrong")
	}

	registered := map[string]bool{}
	for _, v := range Variants() {
		registered[v.Func] = true
		if _, ok := declared[v.Func]; ok {
			declared[v.Func] = true
		}
	}
	for name, covered := range declared {
		if !covered {
			t.Errorf("exported kernel %s has no entry in the variant registry — add it to Variants() so the differential sweep covers it", name)
		}
	}
	for name := range registered {
		if _, ok := declared[name]; !ok {
			t.Errorf("registry names %s but the package declares no such kernel", name)
		}
	}
}
