package kernels

import (
	"repro/internal/formats"
	"repro/internal/matrix"
	"repro/internal/parallel"
)

// BELLSerial computes C[:, :k] = A × B[:, :k] with A in Blocked-ELL form.
// Every block row walks exactly Width blocks — padded block slots hold zero
// values and are skipped by the value guard, but their slots are visited,
// the same fixed-shape trade-off as scalar ELLPACK.
func BELLSerial[T matrix.Float](a *formats.BELL[T], b, c *matrix.Dense[T], k int) error {
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	bellBlockRows(a, b, c, k, 0, a.BlockRows)
	return nil
}

func bellBlockRows[T matrix.Float](a *formats.BELL[T], b, c *matrix.Dense[T], k, lo, hi int) {
	br, bc := a.BR, a.BC
	for bri := lo; bri < hi; bri++ {
		rowBase := bri * br
		rowLim := min(br, a.Rows-rowBase)
		for r := 0; r < rowLim; r++ {
			clear(c.Data[(rowBase+r)*c.Stride : (rowBase+r)*c.Stride+k])
		}
		for s := 0; s < a.Width; s++ {
			colBase := int(a.ColIdx[bri*a.Width+s]) * bc
			colLim := min(bc, a.Cols-colBase)
			blk := a.BlockAt(bri, s)
			for r := 0; r < rowLim; r++ {
				crow := c.Data[(rowBase+r)*c.Stride : (rowBase+r)*c.Stride+k]
				for cc := 0; cc < colLim; cc++ {
					v := blk[r*bc+cc]
					if v == 0 {
						continue
					}
					axpy(crow, b.Data[(colBase+cc)*b.Stride:], v, k)
				}
			}
		}
	}
}

// BELLParallel computes C[:, :k] = A × B[:, :k] with block rows statically
// divided over `threads` workers; the uniform block-row width gives
// perfectly balanced static chunks.
func BELLParallel[T matrix.Float](a *formats.BELL[T], b, c *matrix.Dense[T], k, threads int) error {
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	parallel.For(a.BlockRows, threads, func(lo, hi, _ int) {
		bellBlockRows(a, b, c, k, lo, hi)
	})
	return nil
}

// SELLCSSerial computes C[:, :k] = A × B[:, :k] with A in SELL-C-σ form.
// Slices are walked slot-major (the layout order); output rows are
// un-permuted on the fly via the stored permutation.
func SELLCSSerial[T matrix.Float](a *formats.SELLCS[T], b, c *matrix.Dense[T], k int) error {
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	sellSlices(a, b, c, k, 0, a.NumSlices())
	return nil
}

func sellSlices[T matrix.Float](a *formats.SELLCS[T], b, c *matrix.Dense[T], k, lo, hi int) {
	for sl := lo; sl < hi; sl++ {
		base := int(a.SlicePtr[sl])
		w := int(a.Width[sl])
		laneLim := min(a.C, a.Rows-sl*a.C)
		for l := 0; l < laneLim; l++ {
			clear(c.Data[int(a.Perm[sl*a.C+l])*c.Stride : int(a.Perm[sl*a.C+l])*c.Stride+k])
		}
		for j := 0; j < w; j++ {
			for l := 0; l < laneLim; l++ {
				idx := base + j*a.C + l
				v := a.Vals[idx]
				if v == 0 {
					continue
				}
				row := int(a.Perm[sl*a.C+l])
				axpy(c.Data[row*c.Stride:], b.Data[int(a.ColIdx[idx])*b.Stride:], v, k)
			}
		}
	}
}

// SELLCSParallel computes C[:, :k] = A × B[:, :k] with slices divided over
// `threads` workers. Slices own disjoint output rows (the permutation maps
// each row to exactly one lane), so no synchronisation is needed.
func SELLCSParallel[T matrix.Float](a *formats.SELLCS[T], b, c *matrix.Dense[T], k, threads int) error {
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	parallel.For(a.NumSlices(), threads, func(lo, hi, _ int) {
		sellSlices(a, b, c, k, lo, hi)
	})
	return nil
}
