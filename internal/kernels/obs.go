package kernels

import (
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Scheduling-layer metrics, exported to the process-wide registry. The Opts
// dispatchers do a handful of atomic adds per call (never per row), plus an
// allocation-free walk of the CSR row pointers to publish the chunk
// imbalance the chosen schedule produces — the live counterpart of the
// schedule study's imbalance tables.
var (
	obsDispatchCSR = obs.NewCounter(`spmm_kernels_dispatch_total{format="csr"}`,
		"Parallel kernel dispatches by format.")
	obsDispatchBCSR = obs.NewCounter(`spmm_kernels_dispatch_total{format="bcsr"}`,
		"Parallel kernel dispatches by format.")
	obsDispatchSELLCS = obs.NewCounter(`spmm_kernels_dispatch_total{format="sellcs"}`,
		"Parallel kernel dispatches by format.")
	obsDispatchELL = obs.NewCounter(`spmm_kernels_dispatch_total{format="ell"}`,
		"Parallel kernel dispatches by format.")
	obsDispatchBELL = obs.NewCounter(`spmm_kernels_dispatch_total{format="bell"}`,
		"Parallel kernel dispatches by format.")
	obsDispatchCOO = obs.NewCounter(`spmm_kernels_dispatch_total{format="coo"}`,
		"Parallel kernel dispatches by format.")
	obsRows = obs.NewCounter("spmm_kernels_rows_total",
		"Rows (or block rows / slices) covered by Opts dispatches.")
	obsNonzeros = obs.NewCounter("spmm_kernels_nonzeros_total",
		"Stored nonzeros covered by Opts dispatches (formats with O(1) counts).")
	obsImbalance = obs.NewGauge("spmm_kernels_chunk_imbalance_ratio",
		"Nonzero imbalance of the last CSR dispatch: max chunk nnz over fair share (1 = perfectly balanced).")
)

// recordCSRImbalance publishes the nonzero imbalance of the partition the
// dispatch is about to run: the heaviest chunk's nonzeros divided by the
// fair share nnz/chunks. bounds is nil for the static row partition.
func recordCSRImbalance(rowPtr []int32, rows, threads int, bounds []int) {
	nnz := int(rowPtr[rows])
	if nnz == 0 {
		obsImbalance.Set(1)
		return
	}
	var chunks int
	if bounds != nil {
		chunks = len(bounds) - 1
		if chunks < 1 {
			obsImbalance.Set(1)
			return
		}
	} else {
		chunks = threads
		if chunks < 1 {
			chunks = 1
		}
		if chunks > rows {
			chunks = max(rows, 1)
		}
	}
	var maxChunk int32
	for w := 0; w < chunks; w++ {
		var lo, hi int
		if bounds != nil {
			lo, hi = bounds[w], bounds[w+1]
		} else {
			lo, hi = parallel.ChunkBounds(rows, chunks, w)
		}
		if c := rowPtr[hi] - rowPtr[lo]; c > maxChunk {
			maxChunk = c
		}
	}
	obsImbalance.Set(float64(maxChunk) * float64(chunks) / float64(nnz))
}
