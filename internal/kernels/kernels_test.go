package kernels

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/formats"
	"repro/internal/matrix"
)

// testCase bundles a sparse matrix, its dense expansion, a dense B, and the
// reference C computed with GEMM.
type testCase struct {
	coo  *matrix.COO[float64]
	b    *matrix.Dense[float64]
	bt   *matrix.Dense[float64]
	want *matrix.Dense[float64]
	k    int
}

func newCase(t *testing.T, seed int64, rows, cols, nnz, kmax, k int) *testCase {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	coo := matrix.NewCOO[float64](rows, cols, nnz)
	for i := 0; i < nnz; i++ {
		coo.Append(int32(rng.Intn(rows)), int32(rng.Intn(cols)), rng.NormFloat64())
	}
	coo.Dedup()
	b := matrix.NewDenseRand[float64](cols, kmax, seed+1)
	bk, err := b.View(0, 0, cols, k)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.NewDense[float64](rows, k)
	if err := GEMM(coo.ToDense(), bk.Clone(), want); err != nil {
		t.Fatal(err)
	}
	return &testCase{coo: coo, b: b, bt: b.Transpose(), want: want, k: k}
}

// checkResult compares the first k columns of got against want.
func (tc *testCase) check(t *testing.T, got *matrix.Dense[float64], label string) {
	t.Helper()
	view, err := got.View(0, 0, got.Rows, tc.k)
	if err != nil {
		t.Fatal(err)
	}
	if !view.Clone().EqualTol(tc.want, 1e-9) {
		diff, _ := view.Clone().MaxAbsDiff(tc.want)
		t.Fatalf("%s: result differs from GEMM reference (max abs diff %g)", label, diff)
	}
}

func (tc *testCase) out() *matrix.Dense[float64] {
	c := matrix.NewDense[float64](tc.coo.Rows, tc.b.Cols)
	// Poison so kernels that fail to overwrite are caught.
	for i := range c.Data {
		c.Data[i] = 1e300
	}
	return c
}

var shapes = []struct {
	rows, cols, nnz, kmax, k int
}{
	{1, 1, 1, 8, 8},
	{10, 10, 30, 16, 16},
	{37, 53, 200, 20, 13},
	{64, 64, 500, 128, 128},
	{100, 40, 700, 32, 32},
	{5, 200, 300, 64, 64},
	{80, 80, 0, 8, 8}, // empty matrix
	{50, 50, 400, 24, 0},
}

func forAllShapes(t *testing.T, name string, run func(t *testing.T, tc *testCase, threads int)) {
	t.Helper()
	for si, s := range shapes {
		tc := newCase(t, int64(1000+si), s.rows, s.cols, s.nnz, s.kmax, s.k)
		for _, threads := range []int{1, 4, 13} {
			run(t, tc, threads)
		}
		_ = name
	}
}

func TestCOOKernels(t *testing.T) {
	forAllShapes(t, "coo", func(t *testing.T, tc *testCase, threads int) {
		c := tc.out()
		if err := COOSerial(tc.coo, tc.b, c, tc.k); err != nil {
			t.Fatal(err)
		}
		tc.check(t, c, "COOSerial")

		c = tc.out()
		if err := COOParallel(tc.coo, tc.b, c, tc.k, threads); err != nil {
			t.Fatal(err)
		}
		tc.check(t, c, "COOParallel")

		c = tc.out()
		if err := COOParallelReplicated(tc.coo, tc.b, c, tc.k, threads); err != nil {
			t.Fatal(err)
		}
		tc.check(t, c, "COOParallelReplicated")

		c = tc.out()
		if err := COOSerialT(tc.coo, tc.bt, c, tc.k); err != nil {
			t.Fatal(err)
		}
		tc.check(t, c, "COOSerialT")

		c = tc.out()
		if err := COOParallelT(tc.coo, tc.bt, c, tc.k, threads); err != nil {
			t.Fatal(err)
		}
		tc.check(t, c, "COOParallelT")
	})
}

func TestCSRKernels(t *testing.T) {
	forAllShapes(t, "csr", func(t *testing.T, tc *testCase, threads int) {
		a := formats.CSRFromCOO(tc.coo)
		for _, run := range []struct {
			label string
			fn    func(c *matrix.Dense[float64]) error
		}{
			{"CSRSerial", func(c *matrix.Dense[float64]) error { return CSRSerial(a, tc.b, c, tc.k) }},
			{"CSRParallel", func(c *matrix.Dense[float64]) error { return CSRParallel(a, tc.b, c, tc.k, threads) }},
			{"CSRParallelDynamic", func(c *matrix.Dense[float64]) error { return CSRParallelDynamic(a, tc.b, c, tc.k, threads, 8) }},
			{"CSRSerialT", func(c *matrix.Dense[float64]) error { return CSRSerialT(a, tc.bt, c, tc.k) }},
			{"CSRParallelT", func(c *matrix.Dense[float64]) error { return CSRParallelT(a, tc.bt, c, tc.k, threads) }},
		} {
			c := tc.out()
			if err := run.fn(c); err != nil {
				t.Fatalf("%s: %v", run.label, err)
			}
			tc.check(t, c, run.label)
		}
	})
}

func TestCSCKernel(t *testing.T) {
	forAllShapes(t, "csc", func(t *testing.T, tc *testCase, threads int) {
		a := formats.CSCFromCOO(tc.coo)
		c := tc.out()
		if err := CSCSerial(a, tc.b, c, tc.k); err != nil {
			t.Fatal(err)
		}
		tc.check(t, c, "CSCSerial")
	})
}

func TestELLKernels(t *testing.T) {
	for _, layout := range []formats.ELLLayout{formats.RowMajor, formats.ColMajor} {
		forAllShapes(t, "ell", func(t *testing.T, tc *testCase, threads int) {
			a := formats.ELLFromCOO(tc.coo, layout)
			c := tc.out()
			if err := ELLSerial(a, tc.b, c, tc.k); err != nil {
				t.Fatal(err)
			}
			tc.check(t, c, "ELLSerial "+layout.String())

			c = tc.out()
			if err := ELLParallel(a, tc.b, c, tc.k, threads); err != nil {
				t.Fatal(err)
			}
			tc.check(t, c, "ELLParallel "+layout.String())

			c = tc.out()
			if err := ELLSerialT(a, tc.bt, c, tc.k); err != nil {
				t.Fatal(err)
			}
			tc.check(t, c, "ELLSerialT "+layout.String())

			c = tc.out()
			if err := ELLParallelT(a, tc.bt, c, tc.k, threads); err != nil {
				t.Fatal(err)
			}
			tc.check(t, c, "ELLParallelT "+layout.String())
		})
	}
}

func TestBCSRKernels(t *testing.T) {
	for _, bs := range [][2]int{{1, 1}, {2, 2}, {4, 4}, {3, 5}} {
		forAllShapes(t, "bcsr", func(t *testing.T, tc *testCase, threads int) {
			a, err := formats.BCSRFromCOO(tc.coo, bs[0], bs[1])
			if err != nil {
				t.Fatal(err)
			}
			c := tc.out()
			if err := BCSRSerial(a, tc.b, c, tc.k); err != nil {
				t.Fatal(err)
			}
			tc.check(t, c, "BCSRSerial")

			c = tc.out()
			if err := BCSRParallel(a, tc.b, c, tc.k, threads); err != nil {
				t.Fatal(err)
			}
			tc.check(t, c, "BCSRParallel")

			c = tc.out()
			if err := BCSRParallelInner(a, tc.b, c, tc.k, threads); err != nil {
				t.Fatal(err)
			}
			tc.check(t, c, "BCSRParallelInner")

			c = tc.out()
			if err := BCSRSerialT(a, tc.bt, c, tc.k); err != nil {
				t.Fatal(err)
			}
			tc.check(t, c, "BCSRSerialT")

			c = tc.out()
			if err := BCSRParallelT(a, tc.bt, c, tc.k, threads); err != nil {
				t.Fatal(err)
			}
			tc.check(t, c, "BCSRParallelT")
		})
	}
}

func TestBELLAndSELLKernels(t *testing.T) {
	forAllShapes(t, "bell", func(t *testing.T, tc *testCase, threads int) {
		be, err := formats.BELLFromCOO(tc.coo, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		c := tc.out()
		if err := BELLSerial(be, tc.b, c, tc.k); err != nil {
			t.Fatal(err)
		}
		tc.check(t, c, "BELLSerial")

		c = tc.out()
		if err := BELLParallel(be, tc.b, c, tc.k, threads); err != nil {
			t.Fatal(err)
		}
		tc.check(t, c, "BELLParallel")

		se, err := formats.SELLCSFromCOO(tc.coo, 4, 16)
		if err != nil {
			t.Fatal(err)
		}
		c = tc.out()
		if err := SELLCSSerial(se, tc.b, c, tc.k); err != nil {
			t.Fatal(err)
		}
		tc.check(t, c, "SELLCSSerial")

		c = tc.out()
		if err := SELLCSParallel(se, tc.b, c, tc.k, threads); err != nil {
			t.Fatal(err)
		}
		tc.check(t, c, "SELLCSParallel")
	})
}

func TestFixedKKernelsMatchGeneric(t *testing.T) {
	for _, k := range FixedKs {
		tc := newCase(t, int64(7000+k), 60, 45, 400, k, k)
		a := formats.CSRFromCOO(tc.coo)
		e := formats.ELLFromCOO(tc.coo, formats.RowMajor)
		bb, err := formats.BCSRFromCOO(tc.coo, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, run := range []struct {
			label string
			fn    func(c *matrix.Dense[float64]) error
		}{
			{"CSRSerialFixed", func(c *matrix.Dense[float64]) error { return CSRSerialFixed(a, tc.b, c, k) }},
			{"CSRParallelFixed", func(c *matrix.Dense[float64]) error { return CSRParallelFixed(a, tc.b, c, k, 4) }},
			{"COOSerialFixed", func(c *matrix.Dense[float64]) error { return COOSerialFixed(tc.coo, tc.b, c, k) }},
			{"COOParallelFixed", func(c *matrix.Dense[float64]) error { return COOParallelFixed(tc.coo, tc.b, c, k, 4) }},
			{"ELLSerialFixed", func(c *matrix.Dense[float64]) error { return ELLSerialFixed(e, tc.b, c, k) }},
			{"ELLParallelFixed", func(c *matrix.Dense[float64]) error { return ELLParallelFixed(e, tc.b, c, k, 4) }},
			{"BCSRSerialFixed", func(c *matrix.Dense[float64]) error { return BCSRSerialFixed(bb, tc.b, c, k) }},
			{"BCSRParallelFixed", func(c *matrix.Dense[float64]) error { return BCSRParallelFixed(bb, tc.b, c, k, 4) }},
		} {
			c := tc.out()
			if err := run.fn(c); err != nil {
				t.Fatalf("k=%d %s: %v", k, run.label, err)
			}
			tc.check(t, c, run.label)
		}
	}
}

func TestFixedKUnsupported(t *testing.T) {
	tc := newCase(t, 1, 10, 10, 20, 10, 10)
	a := formats.CSRFromCOO(tc.coo)
	c := tc.out()
	if err := CSRSerialFixed(a, tc.b, c, 10); !errors.Is(err, ErrUnsupportedK) {
		t.Fatalf("want ErrUnsupportedK, got %v", err)
	}
	if HasFixedK(10) || !HasFixedK(64) {
		t.Fatal("HasFixedK wrong")
	}
}

func TestShapeErrors(t *testing.T) {
	coo := matrix.NewCOO[float64](4, 4, 1)
	coo.Append(0, 0, 1)
	a := formats.CSRFromCOO(coo)
	b := matrix.NewDense[float64](4, 8)
	c := matrix.NewDense[float64](4, 8)

	if err := CSRSerial(a, b, c, 9); !errors.Is(err, ErrShape) {
		t.Fatalf("k too large: %v", err)
	}
	if err := CSRSerial(a, b, c, -1); !errors.Is(err, ErrShape) {
		t.Fatalf("negative k: %v", err)
	}
	badB := matrix.NewDense[float64](5, 8)
	if err := CSRSerial(a, badB, c, 4); !errors.Is(err, ErrShape) {
		t.Fatalf("B rows mismatch: %v", err)
	}
	badC := matrix.NewDense[float64](3, 8)
	if err := CSRSerial(a, b, badC, 4); !errors.Is(err, ErrShape) {
		t.Fatalf("C rows mismatch: %v", err)
	}
	// Transposed-B checks.
	bt := matrix.NewDense[float64](8, 5)
	if err := CSRSerialT(a, bt, c, 4); !errors.Is(err, ErrShape) {
		t.Fatalf("Bᵀ cols mismatch: %v", err)
	}
}

func TestSpMVKernels(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(50)
		cols := 1 + rng.Intn(50)
		coo := matrix.NewCOO[float64](rows, cols, 0)
		for i := 0; i < rng.Intn(200); i++ {
			coo.Append(int32(rng.Intn(rows)), int32(rng.Intn(cols)), rng.NormFloat64())
		}
		coo.Dedup()
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		// Reference via dense.
		d := coo.ToDense()
		want := make([]float64, rows)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				want[i] += d.At(i, j) * x[j]
			}
		}
		close := func(y []float64) bool {
			for i := range y {
				if !matrix.EqualTol(y[i], want[i], 1e-9) {
					return false
				}
			}
			return true
		}
		y := make([]float64, rows)
		if COOSpMV(coo, x, y) != nil || !close(y) {
			return false
		}
		if COOSpMVParallel(coo, x, y, 4) != nil || !close(y) {
			return false
		}
		csr := formats.CSRFromCOO(coo)
		if CSRSpMV(csr, x, y) != nil || !close(y) {
			return false
		}
		if CSRSpMVParallel(csr, x, y, 4) != nil || !close(y) {
			return false
		}
		ell := formats.ELLFromCOO(coo, formats.RowMajor)
		if ELLSpMV(ell, x, y) != nil || !close(y) {
			return false
		}
		if ELLSpMVParallel(ell, x, y, 4) != nil || !close(y) {
			return false
		}
		bcsr, err := formats.BCSRFromCOO(coo, 3, 3)
		if err != nil {
			return false
		}
		if BCSRSpMV(bcsr, x, y) != nil || !close(y) {
			return false
		}
		if BCSRSpMVParallel(bcsr, x, y, 4) != nil || !close(y) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSpMVShapeErrors(t *testing.T) {
	coo := matrix.NewCOO[float64](3, 4, 0)
	if err := COOSpMV(coo, make([]float64, 3), make([]float64, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("x length: %v", err)
	}
	if err := COOSpMV(coo, make([]float64, 4), make([]float64, 2)); !errors.Is(err, ErrShape) {
		t.Fatalf("y length: %v", err)
	}
}

func TestFlopCounts(t *testing.T) {
	if SpMMFlops(100, 8) != 1600 {
		t.Fatal("SpMMFlops")
	}
	if SpMVFlops(100) != 200 {
		t.Fatal("SpMVFlops")
	}
}

func TestGEMMShapeError(t *testing.T) {
	a := matrix.NewDense[float64](2, 3)
	b := matrix.NewDense[float64](4, 2)
	c := matrix.NewDense[float64](2, 2)
	if err := GEMM(a, b, c); !errors.Is(err, ErrShape) {
		t.Fatalf("GEMM shape: %v", err)
	}
}

func TestKernelsFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	coo := matrix.NewCOO[float32](20, 20, 0)
	for i := 0; i < 80; i++ {
		coo.Append(int32(rng.Intn(20)), int32(rng.Intn(20)), float32(rng.NormFloat64()))
	}
	coo.Dedup()
	b := matrix.NewDenseRand[float32](20, 16, 5)
	want := matrix.NewDense[float32](20, 16)
	if err := GEMM(coo.ToDense(), b, want); err != nil {
		t.Fatal(err)
	}
	a := formats.CSRFromCOO(coo)
	c := matrix.NewDense[float32](20, 16)
	if err := CSRParallel(a, b, c, 16, 4); err != nil {
		t.Fatal(err)
	}
	if !c.EqualTol(want, matrix.DefaultTol[float32]()) {
		t.Fatal("float32 CSR kernel mismatch")
	}
}
