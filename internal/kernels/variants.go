package kernels

import (
	"context"
	"fmt"

	"repro/internal/formats"
	"repro/internal/matrix"
	"repro/internal/parallel"
)

// This file is the kernel-variant registry behind the differential-testing
// sweep: every exported SpMM entry point (serial, goroutine-per-call,
// pooled, balanced, transposed-B, fixed-k, every format) is listed here
// exactly once per distinct code path, with its accumulation-order contract
// (bitwise vs. reassociated) recorded next to it. The sweep runs the whole
// registry against the dense reference; a completeness test parses the
// package and fails if an exported kernel is missing from the registry, so
// a new variant cannot land without sweep coverage.

// VariantInput bundles one sparse matrix in every format the suite knows,
// plus the dense operands, so a single fixture drives every registered
// variant. Build it with NewVariantInput.
type VariantInput struct {
	COO   *matrix.COO[float64]
	CSR   *formats.CSR[float64]
	CSC   *formats.CSC[float64]
	ELL   *formats.ELL[float64] // row-major value layout
	ELLCM *formats.ELL[float64] // column-major value layout
	BCSR  *formats.BCSR[float64]
	BELL  *formats.BELL[float64]
	SELL  *formats.SELLCS[float64]

	B  *matrix.Dense[float64] // n×k dense operand
	BT *matrix.Dense[float64] // k×n transpose for the *T kernels

	K       int
	Threads int
	// Pool, when non-nil, backs the pooled Opts variants; nil degrades them
	// to goroutine-per-call (still correct, just a different machinery).
	Pool *parallel.Pool
}

// NewVariantInput converts coo into every format and materialises the dense
// operands. block is the BCSR/BELL block edge, c and sigma the SELL-C-σ
// parameters, seed the B fill.
func NewVariantInput(coo *matrix.COO[float64], k, threads, block, c, sigma int, seed int64) (*VariantInput, error) {
	bcsr, err := formats.BCSRFromCOO(coo, block, block)
	if err != nil {
		return nil, fmt.Errorf("bcsr: %w", err)
	}
	bell, err := formats.BELLFromCOO(coo, block, block)
	if err != nil {
		return nil, fmt.Errorf("bell: %w", err)
	}
	sell, err := formats.SELLCSFromCOO(coo, c, sigma)
	if err != nil {
		return nil, fmt.Errorf("sellcs: %w", err)
	}
	b := matrix.NewDenseRand[float64](coo.Cols, k, seed)
	return &VariantInput{
		COO:     coo,
		CSR:     formats.CSRFromCOO(coo),
		CSC:     formats.CSCFromCOO(coo),
		ELL:     formats.ELLFromCOO(coo, formats.RowMajor),
		ELLCM:   formats.ELLFromCOO(coo, formats.ColMajor),
		BCSR:    bcsr,
		BELL:    bell,
		SELL:    sell,
		B:       b,
		BT:      b.Transpose(),
		K:       k,
		Threads: threads,
	}, nil
}

// Variant is one registered kernel entry point.
type Variant struct {
	// Name is the sweep identifier, "<format>/<machinery>".
	Name string
	// Format is the sparse format the variant consumes.
	Format string
	// Func is the exported kernel function the variant exercises. The
	// completeness test cross-checks this set against the package's
	// declarations, in both directions.
	Func string
	// Bitwise records the accumulation-order contract: true means the
	// variant preserves the serial per-element accumulation order (ascending
	// column per output element) and must match the dense reference bit for
	// bit; false means it reassociates partial sums (replicated/private
	// accumulators) and is only required to match within tolerance.
	Bitwise bool
	// NeedsFixedK marks the fixed-k specialisations, defined only for
	// k % 8 == 0 (HasFixedK); sweeps with other k skip these.
	NeedsFixedK bool
	// Run executes the variant, overwriting out[:, :K].
	Run func(in *VariantInput, out *matrix.Dense[float64]) error
}

// Variants returns the full registry. The list is rebuilt per call so tests
// may not corrupt shared state.
func Variants() []Variant {
	ctx := context.Background()
	pooled := func(in *VariantInput, sched Schedule) Opts {
		return Opts{Schedule: sched, Pool: in.Pool}
	}
	return []Variant{
		// COO — the verification format. Row-aligned partitions keep the
		// per-element order; only the replicated ablation reassociates.
		{Name: "coo/serial", Format: "coo", Func: "COOSerial", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error { return COOSerial(in.COO, in.B, out, in.K) }},
		{Name: "coo/serial-ctx", Format: "coo", Func: "COOSerialCtx", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return COOSerialCtx(ctx, in.COO, in.B, out, in.K)
			}},
		{Name: "coo/parallel", Format: "coo", Func: "COOParallel", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return COOParallel(in.COO, in.B, out, in.K, in.Threads)
			}},
		{Name: "coo/parallel-ctx", Format: "coo", Func: "COOParallelCtx", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return COOParallelCtx(ctx, in.COO, in.B, out, in.K, in.Threads)
			}},
		{Name: "coo/parallel-replicated", Format: "coo", Func: "COOParallelReplicated", Bitwise: false,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return COOParallelReplicated(in.COO, in.B, out, in.K, in.Threads)
			}},
		{Name: "coo/serial-bt", Format: "coo", Func: "COOSerialT", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error { return COOSerialT(in.COO, in.BT, out, in.K) }},
		{Name: "coo/parallel-bt", Format: "coo", Func: "COOParallelT", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return COOParallelT(in.COO, in.BT, out, in.K, in.Threads)
			}},
		{Name: "coo/serial-fixed", Format: "coo", Func: "COOSerialFixed", Bitwise: true, NeedsFixedK: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return COOSerialFixed(in.COO, in.B, out, in.K)
			}},
		{Name: "coo/parallel-fixed", Format: "coo", Func: "COOParallelFixed", Bitwise: true, NeedsFixedK: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return COOParallelFixed(in.COO, in.B, out, in.K, in.Threads)
			}},
		{Name: "coo/opts-static", Format: "coo", Func: "COOParallelOpts", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return COOParallelOpts(in.COO, in.B, out, in.K, in.Threads, Opts{})
			}},
		{Name: "coo/opts-pool", Format: "coo", Func: "COOParallelOpts", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return COOParallelOpts(in.COO, in.B, out, in.K, in.Threads, pooled(in, ScheduleStatic))
			}},

		// CSR — the workhorse. Every variant partitions whole rows, so all
		// are bitwise, including dynamic scheduling and the balanced splits.
		{Name: "csr/serial", Format: "csr", Func: "CSRSerial", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error { return CSRSerial(in.CSR, in.B, out, in.K) }},
		{Name: "csr/serial-ctx", Format: "csr", Func: "CSRSerialCtx", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return CSRSerialCtx(ctx, in.CSR, in.B, out, in.K)
			}},
		{Name: "csr/parallel", Format: "csr", Func: "CSRParallel", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return CSRParallel(in.CSR, in.B, out, in.K, in.Threads)
			}},
		{Name: "csr/parallel-ctx", Format: "csr", Func: "CSRParallelCtx", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return CSRParallelCtx(ctx, in.CSR, in.B, out, in.K, in.Threads)
			}},
		{Name: "csr/parallel-dynamic", Format: "csr", Func: "CSRParallelDynamic", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return CSRParallelDynamic(in.CSR, in.B, out, in.K, in.Threads, 4)
			}},
		{Name: "csr/serial-bt", Format: "csr", Func: "CSRSerialT", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error { return CSRSerialT(in.CSR, in.BT, out, in.K) }},
		{Name: "csr/parallel-bt", Format: "csr", Func: "CSRParallelT", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return CSRParallelT(in.CSR, in.BT, out, in.K, in.Threads)
			}},
		{Name: "csr/serial-fixed", Format: "csr", Func: "CSRSerialFixed", Bitwise: true, NeedsFixedK: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return CSRSerialFixed(in.CSR, in.B, out, in.K)
			}},
		{Name: "csr/parallel-fixed", Format: "csr", Func: "CSRParallelFixed", Bitwise: true, NeedsFixedK: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return CSRParallelFixed(in.CSR, in.B, out, in.K, in.Threads)
			}},
		{Name: "csr/opts-static", Format: "csr", Func: "CSRParallelOpts", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return CSRParallelOpts(in.CSR, in.B, out, in.K, in.Threads, Opts{})
			}},
		{Name: "csr/opts-balanced", Format: "csr", Func: "CSRParallelOpts", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return CSRParallelOpts(in.CSR, in.B, out, in.K, in.Threads, Opts{Schedule: ScheduleBalanced})
			}},
		{Name: "csr/opts-pool", Format: "csr", Func: "CSRParallelOpts", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return CSRParallelOpts(in.CSR, in.B, out, in.K, in.Threads, pooled(in, ScheduleStatic))
			}},
		{Name: "csr/opts-balanced-pool", Format: "csr", Func: "CSRParallelOpts", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return CSRParallelOpts(in.CSR, in.B, out, in.K, in.Threads, pooled(in, ScheduleBalanced))
			}},

		// CSC — column orientation. The serial kernel still visits each
		// output element's terms in ascending column order (bitwise); the
		// parallel kernel reduces private replicas (reassociated).
		{Name: "csc/serial", Format: "csc", Func: "CSCSerial", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error { return CSCSerial(in.CSC, in.B, out, in.K) }},
		{Name: "csc/parallel", Format: "csc", Func: "CSCParallel", Bitwise: false,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return CSCParallel(in.CSC, in.B, out, in.K, in.Threads)
			}},

		// ELL — both value layouts through the same entry points; padding
		// slots contribute exact-zero terms that cannot perturb the sum.
		{Name: "ell/serial", Format: "ell", Func: "ELLSerial", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error { return ELLSerial(in.ELL, in.B, out, in.K) }},
		{Name: "ell/serial-colmajor", Format: "ell", Func: "ELLSerial", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error { return ELLSerial(in.ELLCM, in.B, out, in.K) }},
		{Name: "ell/parallel", Format: "ell", Func: "ELLParallel", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return ELLParallel(in.ELL, in.B, out, in.K, in.Threads)
			}},
		{Name: "ell/parallel-colmajor", Format: "ell", Func: "ELLParallel", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return ELLParallel(in.ELLCM, in.B, out, in.K, in.Threads)
			}},
		{Name: "ell/serial-bt", Format: "ell", Func: "ELLSerialT", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error { return ELLSerialT(in.ELL, in.BT, out, in.K) }},
		{Name: "ell/parallel-bt", Format: "ell", Func: "ELLParallelT", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return ELLParallelT(in.ELL, in.BT, out, in.K, in.Threads)
			}},
		{Name: "ell/serial-fixed", Format: "ell", Func: "ELLSerialFixed", Bitwise: true, NeedsFixedK: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return ELLSerialFixed(in.ELL, in.B, out, in.K)
			}},
		{Name: "ell/parallel-fixed", Format: "ell", Func: "ELLParallelFixed", Bitwise: true, NeedsFixedK: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return ELLParallelFixed(in.ELL, in.B, out, in.K, in.Threads)
			}},
		{Name: "ell/opts-static", Format: "ell", Func: "ELLParallelOpts", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return ELLParallelOpts(in.ELL, in.B, out, in.K, in.Threads, Opts{})
			}},
		{Name: "ell/opts-pool", Format: "ell", Func: "ELLParallelOpts", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return ELLParallelOpts(in.ELL, in.B, out, in.K, in.Threads, pooled(in, ScheduleStatic))
			}},

		// BCSR — block storage with explicit zero padding inside partial
		// blocks; the inner-parallel regression variant splits block rows,
		// never an output element's terms, so even it stays bitwise.
		{Name: "bcsr/serial", Format: "bcsr", Func: "BCSRSerial", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error { return BCSRSerial(in.BCSR, in.B, out, in.K) }},
		{Name: "bcsr/parallel", Format: "bcsr", Func: "BCSRParallel", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return BCSRParallel(in.BCSR, in.B, out, in.K, in.Threads)
			}},
		{Name: "bcsr/parallel-inner", Format: "bcsr", Func: "BCSRParallelInner", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return BCSRParallelInner(in.BCSR, in.B, out, in.K, in.Threads)
			}},
		{Name: "bcsr/serial-bt", Format: "bcsr", Func: "BCSRSerialT", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return BCSRSerialT(in.BCSR, in.BT, out, in.K)
			}},
		{Name: "bcsr/parallel-bt", Format: "bcsr", Func: "BCSRParallelT", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return BCSRParallelT(in.BCSR, in.BT, out, in.K, in.Threads)
			}},
		{Name: "bcsr/serial-fixed", Format: "bcsr", Func: "BCSRSerialFixed", Bitwise: true, NeedsFixedK: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return BCSRSerialFixed(in.BCSR, in.B, out, in.K)
			}},
		{Name: "bcsr/parallel-fixed", Format: "bcsr", Func: "BCSRParallelFixed", Bitwise: true, NeedsFixedK: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return BCSRParallelFixed(in.BCSR, in.B, out, in.K, in.Threads)
			}},
		{Name: "bcsr/opts-static", Format: "bcsr", Func: "BCSRParallelOpts", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return BCSRParallelOpts(in.BCSR, in.B, out, in.K, in.Threads, Opts{})
			}},
		{Name: "bcsr/opts-balanced", Format: "bcsr", Func: "BCSRParallelOpts", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return BCSRParallelOpts(in.BCSR, in.B, out, in.K, in.Threads, Opts{Schedule: ScheduleBalanced})
			}},
		{Name: "bcsr/opts-pool", Format: "bcsr", Func: "BCSRParallelOpts", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return BCSRParallelOpts(in.BCSR, in.B, out, in.K, in.Threads, pooled(in, ScheduleStatic))
			}},
		{Name: "bcsr/opts-balanced-pool", Format: "bcsr", Func: "BCSRParallelOpts", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return BCSRParallelOpts(in.BCSR, in.B, out, in.K, in.Threads, pooled(in, ScheduleBalanced))
			}},

		// BELL — blocked ELL: uniform block rows, so static already balances.
		{Name: "bell/serial", Format: "bell", Func: "BELLSerial", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error { return BELLSerial(in.BELL, in.B, out, in.K) }},
		{Name: "bell/parallel", Format: "bell", Func: "BELLParallel", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return BELLParallel(in.BELL, in.B, out, in.K, in.Threads)
			}},
		{Name: "bell/opts-static", Format: "bell", Func: "BELLParallelOpts", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return BELLParallelOpts(in.BELL, in.B, out, in.K, in.Threads, Opts{})
			}},
		{Name: "bell/opts-pool", Format: "bell", Func: "BELLParallelOpts", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return BELLParallelOpts(in.BELL, in.B, out, in.K, in.Threads, pooled(in, ScheduleStatic))
			}},

		// SELL-C-σ — σ-sorting permutes row storage order, never the order
		// of one row's terms, so every variant stays bitwise.
		{Name: "sellcs/serial", Format: "sellcs", Func: "SELLCSSerial", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return SELLCSSerial(in.SELL, in.B, out, in.K)
			}},
		{Name: "sellcs/parallel", Format: "sellcs", Func: "SELLCSParallel", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return SELLCSParallel(in.SELL, in.B, out, in.K, in.Threads)
			}},
		{Name: "sellcs/opts-static", Format: "sellcs", Func: "SELLCSParallelOpts", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return SELLCSParallelOpts(in.SELL, in.B, out, in.K, in.Threads, Opts{})
			}},
		{Name: "sellcs/opts-balanced", Format: "sellcs", Func: "SELLCSParallelOpts", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return SELLCSParallelOpts(in.SELL, in.B, out, in.K, in.Threads, Opts{Schedule: ScheduleBalanced})
			}},
		{Name: "sellcs/opts-pool", Format: "sellcs", Func: "SELLCSParallelOpts", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return SELLCSParallelOpts(in.SELL, in.B, out, in.K, in.Threads, pooled(in, ScheduleStatic))
			}},
		{Name: "sellcs/opts-balanced-pool", Format: "sellcs", Func: "SELLCSParallelOpts", Bitwise: true,
			Run: func(in *VariantInput, out *matrix.Dense[float64]) error {
				return SELLCSParallelOpts(in.SELL, in.B, out, in.K, in.Threads, pooled(in, ScheduleBalanced))
			}},
	}
}
