package kernels

import (
	"testing"

	"repro/internal/formats"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// The zero-allocation audit: steady-state Calculate must not touch the
// heap. Serial kernels (tiled and fixed-k, above and below the tile width)
// must be exactly 0 allocs/op; the pooled parallel path is allowed only the
// caller's body closure. testing.AllocsPerRun pins both so any slice-header
// or closure escape that creeps into the hot loops fails the build.

func allocFixtures(tb testing.TB, k int) (*matrix.COO[float64], *formats.CSR[float64], *formats.ELL[float64], *formats.BCSR[float64], *matrix.Dense[float64], *matrix.Dense[float64]) {
	coo := powerLawCOO(300, 100, 9)
	csr := formats.CSRFromCOO(coo)
	ell := formats.ELLFromCOO(coo, formats.RowMajor)
	bcsr, err := formats.BCSRFromCOO(coo, 4, 4)
	if err != nil {
		tb.Fatal(err)
	}
	b := matrix.NewDenseRand[float64](100, k, 5)
	c := matrix.NewDense[float64](300, k)
	return coo, csr, ell, bcsr, b, c
}

func TestSerialCalculateZeroAlloc(t *testing.T) {
	for _, k := range []int{128, 336} { // single panel and tiled
		_, csr, ell, bcsr, b, c := allocFixtures(t, k)
		for name, run := range map[string]func(){
			"csr":  func() { _ = CSRSerial(csr, b, c, k) },
			"ell":  func() { _ = ELLSerial(ell, b, c, k) },
			"bcsr": func() { _ = BCSRSerial(bcsr, b, c, k) },
		} {
			if n := testing.AllocsPerRun(10, run); n != 0 {
				t.Errorf("%s serial k=%d: %.0f allocs/op, want 0", name, k, n)
			}
		}
	}
}

func TestFixedKCalculateZeroAlloc(t *testing.T) {
	for _, k := range []int{128, 256} { // unrolled and tiled composition
		_, csr, ell, bcsr, b, c := allocFixtures(t, k)
		for name, run := range map[string]func(){
			"csr-fixed":  func() { _ = CSRSerialFixed(csr, b, c, k) },
			"ell-fixed":  func() { _ = ELLSerialFixed(ell, b, c, k) },
			"bcsr-fixed": func() { _ = BCSRSerialFixed(bcsr, b, c, k) },
		} {
			if n := testing.AllocsPerRun(10, run); n != 0 {
				t.Errorf("%s k=%d: %.0f allocs/op, want 0", name, k, n)
			}
		}
	}
}

// TestSerialCalculateZeroAllocTracerInstalled re-runs the serial audit with
// a disabled tracer installed both as the parallel package hook and in the
// Start/End bracket pattern the pipeline uses — the tracer's "disabled is
// free" contract, pinned where it matters (the acceptance criterion of the
// observability layer: 0 allocs/op with tracing disabled on serial
// CSR/ELL/BCSR Calculate).
func TestSerialCalculateZeroAllocTracerInstalled(t *testing.T) {
	tr := trace.New(4, 64) // constructed but never enabled
	parallel.SetTracer(tr)
	defer parallel.SetTracer(nil)
	const k = 128
	_, csr, ell, bcsr, b, c := allocFixtures(t, k)
	for name, run := range map[string]func(){
		"csr":  func() { s := tr.Start(); _ = CSRSerial(csr, b, c, k); tr.End(0, trace.PhaseCalculate, s, 0) },
		"ell":  func() { s := tr.Start(); _ = ELLSerial(ell, b, c, k); tr.End(0, trace.PhaseCalculate, s, 0) },
		"bcsr": func() { s := tr.Start(); _ = BCSRSerial(bcsr, b, c, k); tr.End(0, trace.PhaseCalculate, s, 0) },
	} {
		if n := testing.AllocsPerRun(10, run); n != 0 {
			t.Errorf("%s serial with disabled tracer: %.0f allocs/op, want 0", name, n)
		}
	}
	if tr.Len() != 0 {
		t.Errorf("disabled tracer recorded %d spans", tr.Len())
	}

	// The pooled parallel path must stay within its existing closure-only
	// budget when the hook holds a disabled tracer (the unpooled path's
	// per-call goroutine spawns dominate its allocs either way).
	pool := parallel.NewPool(4)
	defer pool.Close()
	o := Opts{Pool: pool, Trace: tr}
	if n := testing.AllocsPerRun(10, func() { _ = CSRParallelOpts(csr, b, c, k, 4, o) }); n > 3 {
		t.Errorf("csr pooled opts with disabled tracer: %.0f allocs/op, want <= 3", n)
	}
}

func TestPooledBalancedCalculateAllocBound(t *testing.T) {
	// The pooled balanced path may allocate only the kernel's own body
	// closure (the partition is memoized, the pool dispatch is struct
	// sends, the join WaitGroup lives in the pool). Two allocs of headroom
	// keep the bound robust across compiler versions while still catching
	// per-chunk or per-row escapes.
	const k, threads = 128, 4
	pool := parallel.NewPool(threads)
	defer pool.Close()
	coo, csr, ell, bcsr, b, c := allocFixtures(t, k)
	o := Opts{Schedule: ScheduleBalanced, Pool: pool}
	csr.BalancedBounds(threads) // warm, as Prepare does
	bcsr.BalancedBounds(threads)
	for name, run := range map[string]func(){
		"csr":  func() { _ = CSRParallelOpts(csr, b, c, k, threads, o) },
		"ell":  func() { _ = ELLParallelOpts(ell, b, c, k, threads, o) },
		"bcsr": func() { _ = BCSRParallelOpts(bcsr, b, c, k, threads, o) },
		"coo":  func() { _ = COOParallelOpts(coo, b, c, k, threads, o) },
	} {
		if n := testing.AllocsPerRun(10, run); n > 3 {
			t.Errorf("%s pooled balanced: %.0f allocs/op, want <= 3", name, n)
		}
	}
}
