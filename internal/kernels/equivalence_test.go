package kernels

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/formats"
	"repro/internal/matrix"
)

// TestAllKernelsAgreeProperty is the suite's central correctness property:
// for random matrices, shapes, k values, block sizes and thread counts,
// every SpMM kernel of every format must produce the same C (within
// floating-point reassociation tolerance). This is what lets the studies
// compare formats knowing they compute the same thing.
func TestAllKernelsAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(60)
		cols := 1 + rng.Intn(60)
		nnz := rng.Intn(rows*cols/2 + 1)
		k := 1 + rng.Intn(40)
		threads := 1 + rng.Intn(9)
		block := 1 + rng.Intn(6)
		sigmaMult := 1 + rng.Intn(4)

		coo := matrix.NewCOO[float64](rows, cols, nnz)
		for i := 0; i < nnz; i++ {
			coo.Append(int32(rng.Intn(rows)), int32(rng.Intn(cols)), rng.NormFloat64())
		}
		coo.Dedup()

		b := matrix.NewDenseRand[float64](cols, k, seed)
		ref := matrix.NewDense[float64](rows, k)
		if err := COOSerial(coo, b, ref, k); err != nil {
			t.Logf("reference: %v", err)
			return false
		}
		bt := b.Transpose()

		csr := formats.CSRFromCOO(coo)
		csc := formats.CSCFromCOO(coo)
		ell := formats.ELLFromCOO(coo, formats.RowMajor)
		ellCM := formats.ELLFromCOO(coo, formats.ColMajor)
		bcsr, err := formats.BCSRFromCOO(coo, block, block)
		if err != nil {
			t.Logf("bcsr: %v", err)
			return false
		}
		bell, err := formats.BELLFromCOO(coo, block, block)
		if err != nil {
			t.Logf("bell: %v", err)
			return false
		}
		c := 1 + rng.Intn(8)
		sell, err := formats.SELLCSFromCOO(coo, c, c*sigmaMult)
		if err != nil {
			t.Logf("sellcs: %v", err)
			return false
		}

		runs := map[string]func(out *matrix.Dense[float64]) error{
			"coo-par":    func(out *matrix.Dense[float64]) error { return COOParallel(coo, b, out, k, threads) },
			"coo-rep":    func(out *matrix.Dense[float64]) error { return COOParallelReplicated(coo, b, out, k, threads) },
			"coo-t":      func(out *matrix.Dense[float64]) error { return COOSerialT(coo, bt, out, k) },
			"csr":        func(out *matrix.Dense[float64]) error { return CSRSerial(csr, b, out, k) },
			"csr-par":    func(out *matrix.Dense[float64]) error { return CSRParallel(csr, b, out, k, threads) },
			"csr-dyn":    func(out *matrix.Dense[float64]) error { return CSRParallelDynamic(csr, b, out, k, threads, 4) },
			"csr-t":      func(out *matrix.Dense[float64]) error { return CSRParallelT(csr, bt, out, k, threads) },
			"csc":        func(out *matrix.Dense[float64]) error { return CSCSerial(csc, b, out, k) },
			"csc-par":    func(out *matrix.Dense[float64]) error { return CSCParallel(csc, b, out, k, threads) },
			"ell":        func(out *matrix.Dense[float64]) error { return ELLSerial(ell, b, out, k) },
			"ell-cm":     func(out *matrix.Dense[float64]) error { return ELLParallel(ellCM, b, out, k, threads) },
			"bcsr":       func(out *matrix.Dense[float64]) error { return BCSRSerial(bcsr, b, out, k) },
			"bcsr-par":   func(out *matrix.Dense[float64]) error { return BCSRParallel(bcsr, b, out, k, threads) },
			"bcsr-inner": func(out *matrix.Dense[float64]) error { return BCSRParallelInner(bcsr, b, out, k, threads) },
			"bell":       func(out *matrix.Dense[float64]) error { return BELLParallel(bell, b, out, k, threads) },
			"sellcs":     func(out *matrix.Dense[float64]) error { return SELLCSParallel(sell, b, out, k, threads) },
		}
		for name, run := range runs {
			out := matrix.NewDense[float64](rows, k)
			for i := range out.Data {
				out.Data[i] = 1e301 // poison: kernels must overwrite
			}
			if err := run(out); err != nil {
				t.Logf("%s: %v", name, err)
				return false
			}
			view, err := out.View(0, 0, rows, k)
			if err != nil {
				return false
			}
			if !view.Clone().EqualTol(ref, 1e-9) {
				t.Logf("%s: result mismatch (rows=%d cols=%d nnz=%d k=%d threads=%d block=%d)",
					name, rows, cols, coo.NNZ(), k, threads, block)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFormatsRoundTripProperty: every format's ToCOO must reproduce the
// source matrix — the structural counterpart of the kernel property above.
func TestFormatsRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(40)
		cols := 1 + rng.Intn(40)
		coo := matrix.NewCOO[float64](rows, cols, 0)
		for i := 0; i < rng.Intn(rows*cols+1); i++ {
			coo.Append(int32(rng.Intn(rows)), int32(rng.Intn(cols)), rng.NormFloat64()+2)
		}
		coo.Dedup()
		want := coo.ToDense()

		block := 1 + rng.Intn(5)
		bcsr, err := formats.BCSRFromCOO(coo, block, block)
		if err != nil {
			return false
		}
		bell, err := formats.BELLFromCOO(coo, block, block)
		if err != nil {
			return false
		}
		c := 1 + rng.Intn(6)
		sell, err := formats.SELLCSFromCOO(coo, c, c*(1+rng.Intn(3)))
		if err != nil {
			return false
		}
		return formats.CSRFromCOO(coo).ToCOO().ToDense().EqualTol(want, 0) &&
			formats.CSCFromCOO(coo).ToCOO().ToDense().EqualTol(want, 0) &&
			formats.ELLFromCOO(coo, formats.RowMajor).ToCOO().ToDense().EqualTol(want, 0) &&
			bcsr.ToCOO().ToDense().EqualTol(want, 0) &&
			bell.ToCOO().ToDense().EqualTol(want, 0) &&
			sell.ToCOO().ToDense().EqualTol(want, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
