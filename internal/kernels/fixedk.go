package kernels

import (
	"repro/internal/formats"
	"repro/internal/matrix"
	"repro/internal/parallel"
)

// This file is the Go analogue of the thesis' manual-optimisation study
// (Study 9). The C++ suite used templates to "hard-code the value of k in
// the loop" so the compiler could unroll and vectorise; Go has no value
// generics, so the same effect is achieved with hand-unrolled panel
// kernels whose trip counts are compile-time constants, chained from
// widest to narrowest by axpyFixedTiled. The A value load is hoisted out
// of the k loop exactly as the thesis' optimisation does.
//
// Dispatch is by plain comparisons inside axpyFixedTiled rather than a
// func-value table: a generic func value carries an instantiation
// dictionary whose closure is heap-allocated per call, which the
// zero-allocation audit (alloc_test.go) forbids in the kernels' steady
// state.

// FixedKs lists the k values served by a single fully unrolled panel. Any
// other positive multiple of 8 is served by chaining those panels, so
// HasFixedK accepts the whole k % 8 == 0 family.
var FixedKs = []int{8, 16, 32, 64, 128}

// HasFixedK reports whether a specialised kernel exists for k: any
// positive multiple of 8.
func HasFixedK(k int) bool {
	return k > 0 && k%8 == 0
}

// axpy8 computes c[j] += v*b[j] for j in [0,8) with a fully unrolled body.
// The [:8] re-slices pin the trip count for the compiler.
func axpy8[T matrix.Float](c, b []T, v T) {
	c = c[:8]
	b = b[:8]
	c[0] += v * b[0]
	c[1] += v * b[1]
	c[2] += v * b[2]
	c[3] += v * b[3]
	c[4] += v * b[4]
	c[5] += v * b[5]
	c[6] += v * b[6]
	c[7] += v * b[7]
}

func axpy16[T matrix.Float](c, b []T, v T) {
	axpy8(c[:8], b[:8], v)
	axpy8(c[8:16], b[8:16], v)
}

func axpy32[T matrix.Float](c, b []T, v T) {
	axpy16(c[:16], b[:16], v)
	axpy16(c[16:32], b[16:32], v)
}

func axpy64[T matrix.Float](c, b []T, v T) {
	axpy32(c[:32], b[:32], v)
	axpy32(c[32:64], b[32:64], v)
}

func axpy128[T matrix.Float](c, b []T, v T) {
	axpy64(c[:64], b[:64], v)
	axpy64(c[64:128], b[64:128], v)
}

// axpyFixedTiled computes c[j] += v*b[j] for j in [0, k), k a positive
// multiple of 8, by chaining the unrolled panels from widest to narrowest.
// For the exact panel sizes (8..128) this collapses to the single unrolled
// call plus a handful of integer compares; for wider k it is the fixed-k
// rendition of the k-tiled inner loop. Every trip count the compiler sees
// is a constant.
func axpyFixedTiled[T matrix.Float](c, b []T, v T, k int) {
	for k >= 128 {
		axpy128(c, b, v)
		c, b, k = c[128:], b[128:], k-128
	}
	if k >= 64 {
		axpy64(c, b, v)
		c, b, k = c[64:], b[64:], k-64
	}
	if k >= 32 {
		axpy32(c, b, v)
		c, b, k = c[32:], b[32:], k-32
	}
	if k >= 16 {
		axpy16(c, b, v)
		c, b, k = c[16:], b[16:], k-16
	}
	if k >= 8 {
		axpy8(c, b, v)
	}
}

// CSRSerialFixed is CSRSerial with the k loop specialised at compile time.
func CSRSerialFixed[T matrix.Float](a *formats.CSR[T], b, c *matrix.Dense[T], k int) error {
	if !HasFixedK(k) {
		return ErrUnsupportedK
	}
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	csrRowsFixed(a, b, c, k, 0, a.Rows)
	return nil
}

func csrRowsFixed[T matrix.Float](a *formats.CSR[T], b, c *matrix.Dense[T], k, lo, hi int) {
	for i := lo; i < hi; i++ {
		crow := c.Data[i*c.Stride : i*c.Stride+k]
		clear(crow)
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			axpyFixedTiled(crow, b.Data[int(a.ColIdx[p])*b.Stride:], a.Vals[p], k)
		}
	}
}

// CSRParallelFixed is CSRParallel with the k loop specialised.
func CSRParallelFixed[T matrix.Float](a *formats.CSR[T], b, c *matrix.Dense[T], k, threads int) error {
	if !HasFixedK(k) {
		return ErrUnsupportedK
	}
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	parallel.For(a.Rows, threads, func(lo, hi, _ int) {
		csrRowsFixed(a, b, c, k, lo, hi)
	})
	return nil
}

// COOSerialFixed is COOSerial with the k loop specialised.
func COOSerialFixed[T matrix.Float](a *matrix.COO[T], b, c *matrix.Dense[T], k int) error {
	if !HasFixedK(k) {
		return ErrUnsupportedK
	}
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	zeroK(c, k)
	for p := range a.Vals {
		r := int(a.RowIdx[p])
		col := int(a.ColIdx[p])
		axpyFixedTiled(c.Data[r*c.Stride:], b.Data[col*b.Stride:], a.Vals[p], k)
	}
	return nil
}

// COOParallelFixed is COOParallel with the k loop specialised.
func COOParallelFixed[T matrix.Float](a *matrix.COO[T], b, c *matrix.Dense[T], k, threads int) error {
	if !HasFixedK(k) {
		return ErrUnsupportedK
	}
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	bounds := cooRowPartition(a, threads)
	chunks := len(bounds) - 1
	parallel.For(c.Rows, threads, func(lo, hi, _ int) {
		zeroKRows(c, k, lo, hi)
	})
	parallel.For(chunks, chunks, func(wlo, whi, _ int) {
		for w := wlo; w < whi; w++ {
			for p := bounds[w]; p < bounds[w+1]; p++ {
				r := int(a.RowIdx[p])
				col := int(a.ColIdx[p])
				axpyFixedTiled(c.Data[r*c.Stride:], b.Data[col*b.Stride:], a.Vals[p], k)
			}
		}
	})
	return nil
}

// ELLSerialFixed is ELLSerial with the k loop specialised.
func ELLSerialFixed[T matrix.Float](a *formats.ELL[T], b, c *matrix.Dense[T], k int) error {
	if !HasFixedK(k) {
		return ErrUnsupportedK
	}
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	ellRowsFixed(a, b, c, k, 0, a.Rows)
	return nil
}

func ellRowsFixed[T matrix.Float](a *formats.ELL[T], b, c *matrix.Dense[T], k, lo, hi int) {
	for i := lo; i < hi; i++ {
		crow := c.Data[i*c.Stride : i*c.Stride+k]
		clear(crow)
		for s := 0; s < a.Width; s++ {
			col, v := a.At(i, s)
			if v == 0 {
				continue
			}
			axpyFixedTiled(crow, b.Data[int(col)*b.Stride:], v, k)
		}
	}
}

// ELLParallelFixed is ELLParallel with the k loop specialised.
func ELLParallelFixed[T matrix.Float](a *formats.ELL[T], b, c *matrix.Dense[T], k, threads int) error {
	if !HasFixedK(k) {
		return ErrUnsupportedK
	}
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	parallel.For(a.Rows, threads, func(lo, hi, _ int) {
		ellRowsFixed(a, b, c, k, lo, hi)
	})
	return nil
}

// BCSRSerialFixed is BCSRSerial with the k loop specialised.
func BCSRSerialFixed[T matrix.Float](a *formats.BCSR[T], b, c *matrix.Dense[T], k int) error {
	if !HasFixedK(k) {
		return ErrUnsupportedK
	}
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	bcsrBlockRowsFixed(a, b, c, k, 0, a.BlockRows)
	return nil
}

func bcsrBlockRowsFixed[T matrix.Float](a *formats.BCSR[T], b, c *matrix.Dense[T], k, lo, hi int) {
	br, bc := a.BR, a.BC
	for bri := lo; bri < hi; bri++ {
		rowBase := bri * br
		rowLim := min(br, a.Rows-rowBase)
		for r := 0; r < rowLim; r++ {
			clear(c.Data[(rowBase+r)*c.Stride : (rowBase+r)*c.Stride+k])
		}
		for p := a.RowPtr[bri]; p < a.RowPtr[bri+1]; p++ {
			colBase := int(a.ColIdx[p]) * bc
			colLim := min(bc, a.Cols-colBase)
			blk := a.Block(int(p))
			for r := 0; r < rowLim; r++ {
				crow := c.Data[(rowBase+r)*c.Stride : (rowBase+r)*c.Stride+k]
				for cc := 0; cc < colLim; cc++ {
					v := blk[r*bc+cc]
					if v == 0 {
						continue
					}
					axpyFixedTiled(crow, b.Data[(colBase+cc)*b.Stride:], v, k)
				}
			}
		}
	}
}

// BCSRParallelFixed is BCSRParallel with the k loop specialised.
func BCSRParallelFixed[T matrix.Float](a *formats.BCSR[T], b, c *matrix.Dense[T], k, threads int) error {
	if !HasFixedK(k) {
		return ErrUnsupportedK
	}
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	parallel.For(a.BlockRows, threads, func(lo, hi, _ int) {
		bcsrBlockRowsFixed(a, b, c, k, lo, hi)
	})
	return nil
}
