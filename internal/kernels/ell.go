package kernels

import (
	"repro/internal/formats"
	"repro/internal/matrix"
	"repro/internal/parallel"
)

// ELLSerial computes C[:, :k] = A × B[:, :k] with A in ELLPACK form. Both
// storage layouts are supported; the padded slots carry value zero, so they
// contribute nothing (but do cost work — the ELL trade-off the thesis
// studies).
func ELLSerial[T matrix.Float](a *formats.ELL[T], b, c *matrix.Dense[T], k int) error {
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	ellRows(a, b, c, k, 0, a.Rows)
	return nil
}

// ellRows runs the ELL row loop over rows [lo, hi), k-tiled like csrRows so
// wide-k runs keep each B panel cache-hot across the row band.
func ellRows[T matrix.Float](a *formats.ELL[T], b, c *matrix.Dense[T], k, lo, hi int) {
	if k <= tileK {
		ellRowsPanel(a, b, c, 0, k, lo, hi)
		return
	}
	for j0 := 0; j0 < k; j0 += tileK {
		ellRowsPanel(a, b, c, j0, min(tileK, k-j0), lo, hi)
	}
}

func ellRowsPanel[T matrix.Float](a *formats.ELL[T], b, c *matrix.Dense[T], j0, jw, lo, hi int) {
	if a.Layout == formats.ColMajor {
		for i := lo; i < hi; i++ {
			o := i*c.Stride + j0
			crow := c.Data[o : o+jw : o+jw]
			clear(crow)
			for s := 0; s < a.Width; s++ {
				idx := s*a.Rows + i
				v := a.Vals[idx]
				if v == 0 {
					continue
				}
				bo := int(a.ColIdx[idx])*b.Stride + j0
				axpy(crow, b.Data[bo:bo+jw:bo+jw], v, jw)
			}
		}
		return
	}
	for i := lo; i < hi; i++ {
		o := i*c.Stride + j0
		crow := c.Data[o : o+jw : o+jw]
		clear(crow)
		base := i * a.Width
		cols := a.ColIdx[base : base+a.Width : base+a.Width]
		vals := a.Vals[base : base+a.Width : base+a.Width]
		for s, v := range vals {
			if v == 0 {
				continue
			}
			bo := int(cols[s])*b.Stride + j0
			axpy(crow, b.Data[bo:bo+jw:bo+jw], v, jw)
		}
	}
}

// ELLParallel computes C[:, :k] = A × B[:, :k] with rows statically divided
// over `threads` workers. ELL's constant row width makes static chunks
// perfectly balanced — the property that makes the format attractive in
// parallel environments.
func ELLParallel[T matrix.Float](a *formats.ELL[T], b, c *matrix.Dense[T], k, threads int) error {
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	parallel.For(a.Rows, threads, func(lo, hi, _ int) {
		ellRows(a, b, c, k, lo, hi)
	})
	return nil
}

// ELLSerialT computes C[:, :k] = A × B[:, :k] given bt, the transpose of B.
func ELLSerialT[T matrix.Float](a *formats.ELL[T], bt, c *matrix.Dense[T], k int) error {
	if err := checkSpMMT(a.Rows, a.Cols, bt, c, k); err != nil {
		return err
	}
	ellRowsT(a, bt, c, k, 0, a.Rows)
	return nil
}

func ellRowsT[T matrix.Float](a *formats.ELL[T], bt, c *matrix.Dense[T], k, lo, hi int) {
	for i := lo; i < hi; i++ {
		crow := c.Data[i*c.Stride : i*c.Stride+k]
		clear(crow)
		for s := 0; s < a.Width; s++ {
			col, v := a.At(i, s)
			if v == 0 {
				continue
			}
			for j := range crow {
				crow[j] += v * bt.Data[j*bt.Stride+int(col)]
			}
		}
	}
}

// ELLParallelT is the parallel transposed-B ELLPACK kernel.
func ELLParallelT[T matrix.Float](a *formats.ELL[T], bt, c *matrix.Dense[T], k, threads int) error {
	if err := checkSpMMT(a.Rows, a.Cols, bt, c, k); err != nil {
		return err
	}
	parallel.For(a.Rows, threads, func(lo, hi, _ int) {
		ellRowsT(a, bt, c, k, lo, hi)
	})
	return nil
}

// ELLSpMV computes y = A × x with A in ELLPACK form.
func ELLSpMV[T matrix.Float](a *formats.ELL[T], x, y []T) error {
	if err := checkSpMV(a.Rows, a.Cols, x, y); err != nil {
		return err
	}
	for i := 0; i < a.Rows; i++ {
		var sum T
		for s := 0; s < a.Width; s++ {
			col, v := a.At(i, s)
			sum += v * x[col]
		}
		y[i] = sum
	}
	return nil
}

// ELLSpMVParallel computes y = A × x with rows divided over workers.
func ELLSpMVParallel[T matrix.Float](a *formats.ELL[T], x, y []T, threads int) error {
	if err := checkSpMV(a.Rows, a.Cols, x, y); err != nil {
		return err
	}
	parallel.For(a.Rows, threads, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			var sum T
			for s := 0; s < a.Width; s++ {
				col, v := a.At(i, s)
				sum += v * x[col]
			}
			y[i] = sum
		}
	})
	return nil
}
