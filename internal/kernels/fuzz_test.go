package kernels

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// FuzzSpMM is the differential sweep's fuzzing arm, alongside mmio's
// FuzzReadCOO: the fuzzer steers matrix shape, density, k, and block size;
// the body converts a random COO into every registered format and checks
// every variant against the dense GEMM reference under the sweep's
// contracts (bitwise for order-preserving variants, accumulated-magnitude
// ULP for the reassociating ones). Any structural edge the generators in
// differential_test.go miss — odd block remainders, width-zero ELL, a
// format constructor rejecting a shape — is in scope here.
func FuzzSpMM(f *testing.F) {
	// seed, rows, cols, nnz, k, block: the fixed corpus pins the BCSR/BELL
	// block-remainder edge (dimensions not divisible by the block size), the
	// 1×1 minimum, an all-zero matrix, and a fixed-k-eligible k.
	f.Add(int64(1), uint8(40), uint8(30), uint16(200), uint8(16), uint8(3))
	f.Add(int64(7), uint8(13), uint8(9), uint16(40), uint8(8), uint8(4))  // 13%4, 9%4 != 0
	f.Add(int64(9), uint8(21), uint8(17), uint16(60), uint8(5), uint8(5)) // 21%5=1: one-row remainder block
	f.Add(int64(3), uint8(1), uint8(1), uint16(1), uint8(1), uint8(2))    // minimal shape, block > dims
	f.Add(int64(5), uint8(30), uint8(20), uint16(0), uint8(12), uint8(3)) // all-zero
	f.Fuzz(func(t *testing.T, seed int64, rows8, cols8 uint8, nnz16 uint16, k8, block8 uint8) {
		rows := 1 + int(rows8)%64
		cols := 1 + int(cols8)%64
		nnz := int(nnz16) % (rows*cols + 1)
		k := 1 + int(k8)%32
		block := 1 + int(block8)%6
		const threads = 3

		rng := rand.New(rand.NewSource(seed))
		coo := matrix.NewCOO[float64](rows, cols, nnz)
		for i := 0; i < nnz; i++ {
			coo.Append(int32(rng.Intn(rows)), int32(rng.Intn(cols)), rng.NormFloat64())
		}
		coo.Dedup()

		sliceC := 1 + int(block8)%4
		in, err := NewVariantInput(coo, k, threads, block, sliceC, sliceC*(1+int(k8)%4), seed)
		if err != nil {
			t.Fatalf("fixture rows=%d cols=%d nnz=%d block=%d: %v", rows, cols, coo.NNZ(), block, err)
		}
		ref := matrix.NewDense[float64](rows, k)
		if err := GEMM(coo.ToDense(), in.B, ref); err != nil {
			t.Fatal(err)
		}
		sumAbs := sumAbsRef(t, coo, in.B, k)

		for _, v := range Variants() {
			if v.NeedsFixedK && !HasFixedK(k) {
				continue
			}
			out := matrix.NewDense[float64](rows, k)
			for i := range out.Data {
				out.Data[i] = 1e301
			}
			if err := v.Run(in, out); err != nil {
				t.Fatalf("%s (rows=%d cols=%d nnz=%d k=%d block=%d): %v",
					v.Name, rows, cols, coo.NNZ(), k, block, err)
			}
			for i := 0; i < rows; i++ {
				for j := 0; j < k; j++ {
					got, want := out.At(i, j), ref.At(i, j)
					if v.Bitwise {
						if math.Float64bits(got) != math.Float64bits(want) {
							t.Fatalf("%s: C[%d,%d] = %v, want %v bitwise (rows=%d cols=%d nnz=%d k=%d block=%d)",
								v.Name, i, j, got, want, rows, cols, coo.NNZ(), k, block)
						}
					} else if tol := float64(threads+1) * eps * sumAbs.At(i, j); math.Abs(got-want) > tol {
						t.Fatalf("%s: C[%d,%d] = %v, want %v within %g (rows=%d cols=%d nnz=%d k=%d block=%d)",
							v.Name, i, j, got, want, tol, rows, cols, coo.NNZ(), k, block)
					}
				}
			}
		}
	})
}
