package kernels

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/formats"
	"repro/internal/matrix"
	"repro/internal/parallel"
)

// powerLawCOO builds a hub-heavy matrix: row degrees follow a squared-
// uniform draw so a few rows hold most of the nonzeros — the skew that
// breaks row-static scheduling. Some rows stay empty on purpose.
func powerLawCOO(rows, cols int, seed int64) *matrix.COO[float64] {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewCOO[float64](rows, cols, 0)
	for i := 0; i < rows; i++ {
		u := rng.Float64()
		deg := int(u * u * u * float64(cols)) // heavy tail, many near-zero
		if i%17 == 0 {
			deg = 0 // explicit empty rows
		}
		if i == rows/3 {
			deg = cols // one full hub row
		}
		for d := 0; d < deg; d++ {
			m.Append(int32(i), int32(rng.Intn(cols)), rng.NormFloat64())
		}
	}
	m.Dedup()
	return m
}

// TestOptsVariantsBitwiseEqual pins the strongest property the scheduling
// layer offers: balanced scheduling, pooled execution and k-tiling never
// change the per-element accumulation order, so every Opts variant must be
// *bitwise* identical to its format's serial kernel — on skewed matrices
// with empty rows, with rows >> threads and threads >> rows, and for k both
// below and above the tile width.
func TestOptsVariantsBitwiseEqual(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()

	for _, shape := range []struct{ rows, cols int }{
		{500, 120}, // rows >> threads
		{7, 40},    // threads >> rows
	} {
		coo := powerLawCOO(shape.rows, shape.cols, 42)
		csr := formats.CSRFromCOO(coo)
		ell := formats.ELLFromCOO(coo, formats.RowMajor)
		bcsr, err := formats.BCSRFromCOO(coo, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		bell, err := formats.BELLFromCOO(coo, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		sell, err := formats.SELLCSFromCOO(coo, 8, 32)
		if err != nil {
			t.Fatal(err)
		}

		for _, k := range []int{5, 64, 128, 200, 336} { // 200, 336 > tileK
			b := matrix.NewDenseRand[float64](shape.cols, k, 7)
			serial := map[string]*matrix.Dense[float64]{}
			for name, run := range map[string]func(out *matrix.Dense[float64]) error{
				"csr":  func(out *matrix.Dense[float64]) error { return CSRSerial(csr, b, out, k) },
				"ell":  func(out *matrix.Dense[float64]) error { return ELLSerial(ell, b, out, k) },
				"bcsr": func(out *matrix.Dense[float64]) error { return BCSRSerial(bcsr, b, out, k) },
				"bell": func(out *matrix.Dense[float64]) error { return BELLSerial(bell, b, out, k) },
				"sell": func(out *matrix.Dense[float64]) error { return SELLCSSerial(sell, b, out, k) },
				"coo":  func(out *matrix.Dense[float64]) error { return COOSerial(coo, b, out, k) },
			} {
				out := matrix.NewDense[float64](shape.rows, k)
				if err := run(out); err != nil {
					t.Fatalf("%s serial (k=%d): %v", name, k, err)
				}
				serial[name] = out
			}

			for _, threads := range []int{1, 4, 64} {
				for _, o := range []Opts{
					{Schedule: ScheduleBalanced},
					{Pool: pool},
					{Schedule: ScheduleBalanced, Pool: pool},
				} {
					label := fmt.Sprintf("k=%d threads=%d sched=%s pool=%v",
						k, threads, o.Schedule, o.Pool != nil)
					variants := map[string]func(out *matrix.Dense[float64]) error{
						"csr": func(out *matrix.Dense[float64]) error {
							return CSRParallelOpts(csr, b, out, k, threads, o)
						},
						"ell": func(out *matrix.Dense[float64]) error {
							return ELLParallelOpts(ell, b, out, k, threads, o)
						},
						"bcsr": func(out *matrix.Dense[float64]) error {
							return BCSRParallelOpts(bcsr, b, out, k, threads, o)
						},
						"bell": func(out *matrix.Dense[float64]) error {
							return BELLParallelOpts(bell, b, out, k, threads, o)
						},
						"sell": func(out *matrix.Dense[float64]) error {
							return SELLCSParallelOpts(sell, b, out, k, threads, o)
						},
						"coo": func(out *matrix.Dense[float64]) error {
							return COOParallelOpts(coo, b, out, k, threads, o)
						},
					}
					for name, run := range variants {
						out := matrix.NewDense[float64](shape.rows, k)
						for i := range out.Data {
							out.Data[i] = 1e301 // poison: kernel must overwrite
						}
						if err := run(out); err != nil {
							t.Fatalf("%s %s: %v", name, label, err)
						}
						if !out.EqualTol(serial[name], 0) {
							t.Fatalf("%s %s: not bitwise equal to serial (rows=%d)",
								name, label, shape.rows)
						}
					}
				}
			}
		}
	}
}

// TestFixedTiledMatchesGeneric pins the tiled fixed-k composition: any
// k % 8 == 0 outside the unrolled set must match the generic kernel
// bitwise, serial and parallel.
func TestFixedTiledMatchesGeneric(t *testing.T) {
	coo := powerLawCOO(120, 80, 3)
	csr := formats.CSRFromCOO(coo)
	ell := formats.ELLFromCOO(coo, formats.RowMajor)
	bcsr, err := formats.BCSRFromCOO(coo, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{24, 40, 136, 256, 328} {
		if !HasFixedK(k) {
			t.Fatalf("HasFixedK(%d) = false, want true", k)
		}
		b := matrix.NewDenseRand[float64](80, k, 11)
		want := matrix.NewDense[float64](120, k)
		if err := CSRSerial(csr, b, want, k); err != nil {
			t.Fatal(err)
		}
		for name, run := range map[string]func(out *matrix.Dense[float64]) error{
			"csr-fixed":      func(out *matrix.Dense[float64]) error { return CSRSerialFixed(csr, b, out, k) },
			"csr-fixed-par":  func(out *matrix.Dense[float64]) error { return CSRParallelFixed(csr, b, out, k, 4) },
			"ell-fixed":      func(out *matrix.Dense[float64]) error { return ELLSerialFixed(ell, b, out, k) },
			"ell-fixed-par":  func(out *matrix.Dense[float64]) error { return ELLParallelFixed(ell, b, out, k, 4) },
			"bcsr-fixed":     func(out *matrix.Dense[float64]) error { return BCSRSerialFixed(bcsr, b, out, k) },
			"bcsr-fixed-par": func(out *matrix.Dense[float64]) error { return BCSRParallelFixed(bcsr, b, out, k, 4) },
			"coo-fixed":      func(out *matrix.Dense[float64]) error { return COOSerialFixed(coo, b, out, k) },
			"coo-fixed-par":  func(out *matrix.Dense[float64]) error { return COOParallelFixed(coo, b, out, k, 4) },
		} {
			out := matrix.NewDense[float64](120, k)
			for i := range out.Data {
				out.Data[i] = 1e301
			}
			if err := run(out); err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			if !out.EqualTol(want, 0) {
				t.Fatalf("%s k=%d: not bitwise equal to generic serial", name, k)
			}
		}
	}
	for _, k := range []int{0, 7, 12, 129} {
		if HasFixedK(k) {
			t.Fatalf("HasFixedK(%d) = true, want false", k)
		}
		out := matrix.NewDense[float64](120, max(k, 1))
		b := matrix.NewDenseRand[float64](80, max(k, 1), 11)
		if err := CSRSerialFixed(csr, b, out, k); err != ErrUnsupportedK {
			t.Fatalf("CSRSerialFixed k=%d: err %v, want ErrUnsupportedK", k, err)
		}
	}
}
