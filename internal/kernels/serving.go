package kernels

import (
	"fmt"
	"strings"

	"repro/internal/matrix"
)

// This file is the serving layer's view of the variant registry: execution
// by variant name and the mapping between registry names and serving plans
// (format + schedule + pooled-or-spawn). internal/serve picks a variant per
// registered matrix and internal/tune shadow-races the alternatives, so
// both need a stable name → executable mapping that is exactly the
// differential-sweep registry — every arm the tuner can promote is a code
// path the sweep already verified against the dense reference.

// ServableVariants returns the registry subset a server may dispatch a
// live multiply (or a shadow trial) on: the Opts-machinery variants, which
// preserve the serial accumulation order (bitwise — so a challenger's
// output can be verified against the served result exactly), work for any
// k, and take their scheduling from the variant name instead of ambient
// state. Transposed-B, fixed-k, ctx and reassociating variants are
// excluded.
func ServableVariants() []Variant {
	var out []Variant
	for _, v := range Variants() {
		if v.Bitwise && !v.NeedsFixedK && strings.HasSuffix(v.Func, "Opts") {
			out = append(out, v)
		}
	}
	return out
}

// VariantByName looks a registered variant up by its sweep name
// ("<format>/<machinery>").
func VariantByName(name string) (Variant, bool) {
	for _, v := range Variants() {
		if v.Name == name {
			return v, true
		}
	}
	return Variant{}, false
}

// RunVariant executes the named variant against in, overwriting
// out[:, :in.K]. The fields of in the variant consumes (its format, B, K,
// Threads, and Pool for the pooled arms) must be populated; the rest may
// stay nil.
func RunVariant(name string, in *VariantInput, out *matrix.Dense[float64]) error {
	v, ok := VariantByName(name)
	if !ok {
		return fmt.Errorf("kernels: unknown variant %q", name)
	}
	return v.Run(in, out)
}

// PlanForVariant decodes a servable variant name into the serving plan it
// executes: the sparse format, the work-partition schedule, and whether
// dispatch rides the persistent pool. ok is false for names outside the
// servable subset.
func PlanForVariant(name string) (format string, sched Schedule, pooled bool, ok bool) {
	v, found := VariantByName(name)
	if !found || !v.Bitwise || v.NeedsFixedK || !strings.HasSuffix(v.Func, "Opts") {
		return "", ScheduleStatic, false, false
	}
	sched = ScheduleStatic
	if strings.Contains(v.Name, "balanced") {
		sched = ScheduleBalanced
	}
	return v.Format, sched, strings.HasSuffix(v.Name, "pool"), true
}

// ServingVariant composes the registry name for a serving plan, degrading
// to the nearest registered arm when the exact combination has no distinct
// entry (formats whose balanced partition is identical to static register
// no balanced variant; dropping the qualifier changes nothing about the
// dispatch for them).
func ServingVariant(format string, sched Schedule, pooled bool) string {
	name := func(s Schedule, p bool) string {
		m := "opts-static"
		switch {
		case s == ScheduleBalanced && p:
			m = "opts-balanced-pool"
		case s == ScheduleBalanced:
			m = "opts-balanced"
		case p:
			m = "opts-pool"
		}
		return format + "/" + m
	}
	if _, ok := VariantByName(name(sched, pooled)); ok {
		return name(sched, pooled)
	}
	if _, ok := VariantByName(name(ScheduleStatic, pooled)); ok {
		return name(ScheduleStatic, pooled)
	}
	return name(ScheduleStatic, false)
}
