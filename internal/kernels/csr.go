package kernels

import (
	"context"

	"repro/internal/formats"
	"repro/internal/matrix"
	"repro/internal/parallel"
)

// CSRSerial computes C[:, :k] = A × B[:, :k] with A in CSR form.
func CSRSerial[T matrix.Float](a *formats.CSR[T], b, c *matrix.Dense[T], k int) error {
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	csrRows(a, b, c, k, 0, a.Rows)
	return nil
}

// csrRows runs the CSR row loop over rows [lo, hi), processing B in panels
// of tileK columns so a panel stays cache-hot across the whole row band
// (see tileK). For k <= tileK this is a single panel — the classic loop.
func csrRows[T matrix.Float](a *formats.CSR[T], b, c *matrix.Dense[T], k, lo, hi int) {
	if k <= tileK {
		csrRowsPanel(a, b, c, 0, k, lo, hi)
		return
	}
	for j0 := 0; j0 < k; j0 += tileK {
		csrRowsPanel(a, b, c, j0, min(tileK, k-j0), lo, hi)
	}
}

// csrRowsPanel accumulates columns [j0, j0+jw) of C for rows [lo, hi). The
// full-slice expressions on both operands drop the inner bounds checks.
func csrRowsPanel[T matrix.Float](a *formats.CSR[T], b, c *matrix.Dense[T], j0, jw, lo, hi int) {
	for i := lo; i < hi; i++ {
		o := i*c.Stride + j0
		crow := c.Data[o : o+jw : o+jw]
		clear(crow)
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			bo := int(a.ColIdx[p])*b.Stride + j0
			axpy(crow, b.Data[bo:bo+jw:bo+jw], a.Vals[p], jw)
		}
	}
}

// CSRParallel computes C[:, :k] = A × B[:, :k] with rows statically divided
// over `threads` workers — the direct analogue of the thesis' OpenMP
// "parallel for" over rows.
func CSRParallel[T matrix.Float](a *formats.CSR[T], b, c *matrix.Dense[T], k, threads int) error {
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	parallel.For(a.Rows, threads, func(lo, hi, _ int) {
		csrRows(a, b, c, k, lo, hi)
	})
	return nil
}

// CSRSerialCtx is CSRSerial with cooperative cancellation: the row loop
// checks ctx every cancelStride rows and returns ctx.Err() early, leaving C
// partially written. A nil ctx behaves exactly like CSRSerial.
func CSRSerialCtx[T matrix.Float](ctx context.Context, a *formats.CSR[T], b, c *matrix.Dense[T], k int) error {
	if ctx == nil {
		return CSRSerial(a, b, c, k)
	}
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	for lo := 0; lo < a.Rows; lo += cancelStride {
		if err := ctx.Err(); err != nil {
			return err
		}
		csrRows(a, b, c, k, lo, min(lo+cancelStride, a.Rows))
	}
	return ctx.Err()
}

// CSRParallelCtx is CSRParallel with cooperative cancellation. It keeps
// CSRParallel's static row partition (so timings are comparable) and adds a
// ctx check every cancelStride rows inside each worker's chunk.
func CSRParallelCtx[T matrix.Float](ctx context.Context, a *formats.CSR[T], b, c *matrix.Dense[T], k, threads int) error {
	if ctx == nil {
		return CSRParallel(a, b, c, k, threads)
	}
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	return parallel.ForCtx(ctx, a.Rows, threads, func(lo, hi, _ int) {
		for l := lo; l < hi; l += cancelStride {
			if ctx.Err() != nil {
				return
			}
			csrRows(a, b, c, k, l, min(l+cancelStride, hi))
		}
	})
}

// CSRParallelDynamic is CSRParallel with dynamic self-scheduling, for
// matrices whose row lengths are too irregular for static chunks (high
// column ratio, e.g. torso1).
func CSRParallelDynamic[T matrix.Float](a *formats.CSR[T], b, c *matrix.Dense[T], k, threads, chunk int) error {
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	parallel.ForDynamic(a.Rows, threads, chunk, func(lo, hi, _ int) {
		csrRows(a, b, c, k, lo, hi)
	})
	return nil
}

// CSRSerialT computes C[:, :k] = A × B[:, :k] given bt, the transpose of B.
func CSRSerialT[T matrix.Float](a *formats.CSR[T], bt, c *matrix.Dense[T], k int) error {
	if err := checkSpMMT(a.Rows, a.Cols, bt, c, k); err != nil {
		return err
	}
	csrRowsT(a, bt, c, k, 0, a.Rows)
	return nil
}

func csrRowsT[T matrix.Float](a *formats.CSR[T], bt, c *matrix.Dense[T], k, lo, hi int) {
	for i := lo; i < hi; i++ {
		crow := c.Data[i*c.Stride : i*c.Stride+k]
		clear(crow)
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			col := int(a.ColIdx[p])
			v := a.Vals[p]
			for j := range crow {
				crow[j] += v * bt.Data[j*bt.Stride+col]
			}
		}
	}
}

// CSRParallelT is the parallel transposed-B CSR kernel.
func CSRParallelT[T matrix.Float](a *formats.CSR[T], bt, c *matrix.Dense[T], k, threads int) error {
	if err := checkSpMMT(a.Rows, a.Cols, bt, c, k); err != nil {
		return err
	}
	parallel.For(a.Rows, threads, func(lo, hi, _ int) {
		csrRowsT(a, bt, c, k, lo, hi)
	})
	return nil
}

// CSRSpMV computes y = A × x with A in CSR form.
func CSRSpMV[T matrix.Float](a *formats.CSR[T], x, y []T) error {
	if err := checkSpMV(a.Rows, a.Cols, x, y); err != nil {
		return err
	}
	for i := 0; i < a.Rows; i++ {
		var sum T
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			sum += a.Vals[p] * x[a.ColIdx[p]]
		}
		y[i] = sum
	}
	return nil
}

// CSRSpMVParallel computes y = A × x with rows divided over workers.
func CSRSpMVParallel[T matrix.Float](a *formats.CSR[T], x, y []T, threads int) error {
	if err := checkSpMV(a.Rows, a.Cols, x, y); err != nil {
		return err
	}
	parallel.For(a.Rows, threads, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			var sum T
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				sum += a.Vals[p] * x[a.ColIdx[p]]
			}
			y[i] = sum
		}
	})
	return nil
}

// CSCSerial computes C[:, :k] = A × B[:, :k] with A in CSC form. Column
// orientation means every stored entry scatters into C rows, so unlike CSR
// the row loop cannot be parallelised without synchronisation; the suite
// provides only the serial kernel (the related work's CSC SpMM systems
// partition by column panels instead).
func CSCSerial[T matrix.Float](a *formats.CSC[T], b, c *matrix.Dense[T], k int) error {
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	zeroK(c, k)
	for j := 0; j < a.Cols; j++ {
		brow := b.Data[j*b.Stride:]
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			axpy(c.Data[int(a.RowIdx[p])*c.Stride:], brow, a.Vals[p], k)
		}
	}
	return nil
}

// CSCParallel computes C[:, :k] = A × B[:, :k] with A in CSC form by
// splitting the columns over workers, each accumulating into a private copy
// of C, followed by a parallel reduction — the replication strategy column
// orientation forces (all workers scatter into all C rows).
func CSCParallel[T matrix.Float](a *formats.CSC[T], b, c *matrix.Dense[T], k, threads int) error {
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	if threads < 1 {
		threads = 1
	}
	if threads > a.Cols {
		threads = max(a.Cols, 1)
	}
	if threads == 1 {
		return CSCSerial(a, b, c, k)
	}
	privs := make([]*matrix.Dense[T], threads)
	parallel.For(threads, threads, func(wlo, whi, _ int) {
		for w := wlo; w < whi; w++ {
			priv := matrix.NewDense[T](c.Rows, k)
			privs[w] = priv
			lo, hi := parallel.ChunkBounds(a.Cols, threads, w)
			for j := lo; j < hi; j++ {
				brow := b.Data[j*b.Stride:]
				for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
					axpy(priv.Data[int(a.RowIdx[p])*priv.Stride:], brow, a.Vals[p], k)
				}
			}
		}
	})
	parallel.For(c.Rows, threads, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			crow := c.Data[i*c.Stride : i*c.Stride+k]
			clear(crow)
			for _, priv := range privs {
				prow := priv.Data[i*priv.Stride : i*priv.Stride+k]
				for j := range crow {
					crow[j] += prow[j]
				}
			}
		}
	})
	return nil
}
