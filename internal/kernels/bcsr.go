package kernels

import (
	"repro/internal/formats"
	"repro/internal/matrix"
	"repro/internal/parallel"
)

// BCSRSerial computes C[:, :k] = A × B[:, :k] with A in BCSR form. The
// kernel walks whole blocks, including their padding zeros — the extra work
// a badly chosen block size costs.
func BCSRSerial[T matrix.Float](a *formats.BCSR[T], b, c *matrix.Dense[T], k int) error {
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	bcsrBlockRows(a, b, c, k, 0, a.BlockRows)
	return nil
}

// bcsrBlockRows processes block rows [lo, hi). A trailing padded fringe
// (rows/cols beyond the logical dimensions) is guarded explicitly; interior
// padding is plain zero values. The dense-column loop is k-tiled like
// csrRows so wide-k runs keep each B panel cache-hot across the band.
func bcsrBlockRows[T matrix.Float](a *formats.BCSR[T], b, c *matrix.Dense[T], k, lo, hi int) {
	if k <= tileK {
		bcsrBlockRowsPanel(a, b, c, 0, k, lo, hi)
		return
	}
	for j0 := 0; j0 < k; j0 += tileK {
		bcsrBlockRowsPanel(a, b, c, j0, min(tileK, k-j0), lo, hi)
	}
}

func bcsrBlockRowsPanel[T matrix.Float](a *formats.BCSR[T], b, c *matrix.Dense[T], j0, jw, lo, hi int) {
	br, bc := a.BR, a.BC
	for bri := lo; bri < hi; bri++ {
		rowBase := bri * br
		rowLim := min(br, a.Rows-rowBase)
		for r := 0; r < rowLim; r++ {
			o := (rowBase+r)*c.Stride + j0
			clear(c.Data[o : o+jw])
		}
		for p := a.RowPtr[bri]; p < a.RowPtr[bri+1]; p++ {
			colBase := int(a.ColIdx[p]) * bc
			colLim := min(bc, a.Cols-colBase)
			blk := a.Block(int(p))
			for r := 0; r < rowLim; r++ {
				o := (rowBase+r)*c.Stride + j0
				crow := c.Data[o : o+jw : o+jw]
				for cc := 0; cc < colLim; cc++ {
					v := blk[r*bc+cc]
					if v == 0 {
						continue
					}
					bo := (colBase+cc)*b.Stride + j0
					axpy(crow, b.Data[bo:bo+jw:bo+jw], v, jw)
				}
			}
		}
	}
}

// BCSRParallel computes C[:, :k] = A × B[:, :k] with block rows statically
// divided over `threads` workers. Parallelising at block-row granularity is
// what the blocked format buys: each worker owns whole C row-bands.
func BCSRParallel[T matrix.Float](a *formats.BCSR[T], b, c *matrix.Dense[T], k, threads int) error {
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	parallel.For(a.BlockRows, threads, func(lo, hi, _ int) {
		bcsrBlockRows(a, b, c, k, lo, hi)
	})
	return nil
}

// BCSRSerialT computes C[:, :k] = A × B[:, :k] given bt, the transpose of B.
func BCSRSerialT[T matrix.Float](a *formats.BCSR[T], bt, c *matrix.Dense[T], k int) error {
	if err := checkSpMMT(a.Rows, a.Cols, bt, c, k); err != nil {
		return err
	}
	bcsrBlockRowsT(a, bt, c, k, 0, a.BlockRows)
	return nil
}

func bcsrBlockRowsT[T matrix.Float](a *formats.BCSR[T], bt, c *matrix.Dense[T], k, lo, hi int) {
	br, bc := a.BR, a.BC
	for bri := lo; bri < hi; bri++ {
		rowBase := bri * br
		rowLim := min(br, a.Rows-rowBase)
		for r := 0; r < rowLim; r++ {
			clear(c.Data[(rowBase+r)*c.Stride : (rowBase+r)*c.Stride+k])
		}
		for p := a.RowPtr[bri]; p < a.RowPtr[bri+1]; p++ {
			colBase := int(a.ColIdx[p]) * bc
			colLim := min(bc, a.Cols-colBase)
			blk := a.Block(int(p))
			for r := 0; r < rowLim; r++ {
				crow := c.Data[(rowBase+r)*c.Stride : (rowBase+r)*c.Stride+k]
				for cc := 0; cc < colLim; cc++ {
					v := blk[r*bc+cc]
					if v == 0 {
						continue
					}
					col := colBase + cc
					for j := range crow {
						crow[j] += v * bt.Data[j*bt.Stride+col]
					}
				}
			}
		}
	}
}

// BCSRParallelT is the parallel transposed-B BCSR kernel.
func BCSRParallelT[T matrix.Float](a *formats.BCSR[T], bt, c *matrix.Dense[T], k, threads int) error {
	if err := checkSpMMT(a.Rows, a.Cols, bt, c, k); err != nil {
		return err
	}
	parallel.For(a.BlockRows, threads, func(lo, hi, _ int) {
		bcsrBlockRowsT(a, bt, c, k, lo, hi)
	})
	return nil
}

// BCSRParallelInner is the Study 9 footnote variant: it parallelises the
// *inner* (within-block-row) loop instead of the block-row loop. The thesis
// notes this change "clearly made the overall performance worse"; the suite
// keeps it so the regression is reproducible.
func BCSRParallelInner[T matrix.Float](a *formats.BCSR[T], b, c *matrix.Dense[T], k, threads int) error {
	if err := checkSpMM(a.Rows, a.Cols, b, c, k); err != nil {
		return err
	}
	zeroK(c, k)
	br, bc := a.BR, a.BC
	for bri := 0; bri < a.BlockRows; bri++ {
		rowBase := bri * br
		rowLim := min(br, a.Rows-rowBase)
		nblk := int(a.RowPtr[bri+1] - a.RowPtr[bri])
		if nblk == 0 {
			continue
		}
		first := int(a.RowPtr[bri])
		// Each worker accumulates disjoint C rows only if it owns whole
		// rows of the block; parallelising over blocks within the row
		// races on C, so workers split the *row* dimension of the block
		// instead — tiny chunks, heavy fork/join per block row. That is
		// the pathology the thesis observed.
		parallel.For(rowLim, threads, func(rlo, rhi, _ int) {
			for p := first; p < first+nblk; p++ {
				colBase := int(a.ColIdx[p]) * bc
				colLim := min(bc, a.Cols-colBase)
				blk := a.Block(p)
				for r := rlo; r < rhi; r++ {
					crow := c.Data[(rowBase+r)*c.Stride : (rowBase+r)*c.Stride+k]
					for cc := 0; cc < colLim; cc++ {
						v := blk[r*bc+cc]
						if v == 0 {
							continue
						}
						axpy(crow, b.Data[(colBase+cc)*b.Stride:], v, k)
					}
				}
			}
		})
	}
	return nil
}

// BCSRSpMV computes y = A × x with A in BCSR form.
func BCSRSpMV[T matrix.Float](a *formats.BCSR[T], x, y []T) error {
	if err := checkSpMV(a.Rows, a.Cols, x, y); err != nil {
		return err
	}
	clear(y)
	br, bc := a.BR, a.BC
	for bri := 0; bri < a.BlockRows; bri++ {
		rowBase := bri * br
		rowLim := min(br, a.Rows-rowBase)
		for p := a.RowPtr[bri]; p < a.RowPtr[bri+1]; p++ {
			colBase := int(a.ColIdx[p]) * bc
			colLim := min(bc, a.Cols-colBase)
			blk := a.Block(int(p))
			for r := 0; r < rowLim; r++ {
				var sum T
				for cc := 0; cc < colLim; cc++ {
					sum += blk[r*bc+cc] * x[colBase+cc]
				}
				y[rowBase+r] += sum
			}
		}
	}
	return nil
}

// BCSRSpMVParallel computes y = A × x with block rows divided over workers.
func BCSRSpMVParallel[T matrix.Float](a *formats.BCSR[T], x, y []T, threads int) error {
	if err := checkSpMV(a.Rows, a.Cols, x, y); err != nil {
		return err
	}
	br, bc := a.BR, a.BC
	parallel.For(a.BlockRows, threads, func(lo, hi, _ int) {
		for bri := lo; bri < hi; bri++ {
			rowBase := bri * br
			rowLim := min(br, a.Rows-rowBase)
			clear(y[rowBase : rowBase+rowLim])
			for p := a.RowPtr[bri]; p < a.RowPtr[bri+1]; p++ {
				colBase := int(a.ColIdx[p]) * bc
				colLim := min(bc, a.Cols-colBase)
				blk := a.Block(int(p))
				for r := 0; r < rowLim; r++ {
					var sum T
					for cc := 0; cc < colLim; cc++ {
						sum += blk[r*bc+cc] * x[colBase+cc]
					}
					y[rowBase+r] += sum
				}
			}
		}
	})
	return nil
}
