package obs

import (
	"strings"
	"testing"
)

// TestPrometheusExpositionGolden pins the exposition schema: metric names,
// HELP/TYPE lines, label ordering, histogram expansion. Any change to the
// rendered format — intentional or not — must update this golden string, so
// scrapers and dashboards never drift silently.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()

	// Register out of sorted order on purpose: the writer must sort
	// families by name and series within a family by label text.
	r.NewCounter(`spmm_runs_total{status="ok"}`, "Completed benchmark runs by status.").Add(7)
	r.NewCounter(`spmm_runs_total{status="failed"}`, "Completed benchmark runs by status.").Add(2)
	r.NewGauge("spmm_chunk_imbalance_ratio", "Max over mean nonzeros per chunk.").Set(1.25)
	r.NewGaugeFunc("spmm_checkpoint_age_seconds", "Seconds since the journal last grew.",
		func() float64 { return 12.5 })
	h := r.NewHistogram("spmm_calculate_seconds", "Wall time of the calculate phase.")
	h.Observe(5e-4) // le 1e-3
	h.Observe(3e-2) // le 1e-1
	r.NewCounter("spmm_dram_bytes_total", "Bytes of modelled DRAM traffic.").Add(4096)

	const want = `# HELP spmm_calculate_seconds Wall time of the calculate phase.
# TYPE spmm_calculate_seconds histogram
spmm_calculate_seconds_bucket{le="1e-09"} 0
spmm_calculate_seconds_bucket{le="1e-08"} 0
spmm_calculate_seconds_bucket{le="1e-07"} 0
spmm_calculate_seconds_bucket{le="1e-06"} 0
spmm_calculate_seconds_bucket{le="1e-05"} 0
spmm_calculate_seconds_bucket{le="0.0001"} 0
spmm_calculate_seconds_bucket{le="0.001"} 1
spmm_calculate_seconds_bucket{le="0.01"} 1
spmm_calculate_seconds_bucket{le="0.1"} 2
spmm_calculate_seconds_bucket{le="1"} 2
spmm_calculate_seconds_bucket{le="10"} 2
spmm_calculate_seconds_bucket{le="100"} 2
spmm_calculate_seconds_bucket{le="1000"} 2
spmm_calculate_seconds_bucket{le="+Inf"} 2
spmm_calculate_seconds_sum 0.0305
spmm_calculate_seconds_count 2
# HELP spmm_checkpoint_age_seconds Seconds since the journal last grew.
# TYPE spmm_checkpoint_age_seconds gauge
spmm_checkpoint_age_seconds 12.5
# HELP spmm_chunk_imbalance_ratio Max over mean nonzeros per chunk.
# TYPE spmm_chunk_imbalance_ratio gauge
spmm_chunk_imbalance_ratio 1.25
# HELP spmm_dram_bytes_total Bytes of modelled DRAM traffic.
# TYPE spmm_dram_bytes_total counter
spmm_dram_bytes_total 4096
# HELP spmm_runs_total Completed benchmark runs by status.
# TYPE spmm_runs_total counter
spmm_runs_total{status="failed"} 2
spmm_runs_total{status="ok"} 7
`

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != want {
		t.Errorf("exposition format drifted.\n--- got ---\n%s\n--- want ---\n%s", got, want)
		gotLines, wantLines := strings.Split(got, "\n"), strings.Split(want, "\n")
		for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
			g, w := "", ""
			if i < len(gotLines) {
				g = gotLines[i]
			}
			if i < len(wantLines) {
				w = wantLines[i]
			}
			if g != w {
				t.Fatalf("first divergence at line %d:\n  got:  %q\n  want: %q", i+1, g, w)
			}
		}
	}
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("t_esc_total", "line one\nback\\slash")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `# HELP t_esc_total line one\nback\\slash`) {
		t.Fatalf("help text not escaped:\n%s", b.String())
	}
}
