// Package obs is the suite's metrics substrate: a process-wide registry of
// counters, gauges and histograms, a Prometheus text-format (v0.0.4)
// exposition writer, a stdlib-only HTTP server (/metrics, /healthz,
// /debug/vars, optional /debug/pprof) and a structured-logging layer on
// slog. Where internal/trace answers "where did the time go" for one run,
// obs answers "what is the system doing, continuously": the simulators
// export their modelled hardware counters (cache hits, DRAM bytes,
// coalescing, occupancy), the scheduling layer its dispatch and imbalance
// figures, and the campaign harness its live progress — all scrapeable
// mid-campaign through `spmmbench -serve`.
//
// Design constraints, in order (mirroring internal/trace):
//
//   - The hot path is lock-free and allocation-free: a metric handle is
//     resolved once (package-level var, registration at init) and every
//     Add/Set/Observe is one or two atomic operations. The alloc audit
//     (TestHotPathZeroAlloc) and BenchmarkObsOverhead pin 0 allocs/op on
//     the serial-kernel hot path.
//   - Registration is explicit and collision-checked: the same name must
//     always carry the same type and help text; a family never mixes metric
//     types. Misregistration panics at init time, like expvar.
//   - Exposition is deterministic: families sort by name, series within a
//     family sort by their label sets, so scrapers (and the golden test)
//     can rely on a stable schema.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. The zero value is
// usable but unregistered; obtain registered counters via NewCounter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta (negative deltas are ignored —
// counters are monotonic by contract).
func (c *Counter) Add(delta int64) {
	if c == nil || delta <= 0 {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by delta (CAS loop; still allocation-free).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// HistogramBounds are the fixed log-scale (decade) bucket upper bounds every
// histogram uses: 1e-9 .. 1e3, sized for seconds-valued observations from
// nanoseconds to kiloseconds. A fixed shared layout keeps Observe free of
// per-metric configuration and the exposition schema stable.
var HistogramBounds = []float64{
	1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 1e1, 1e2, 1e3,
}

const histBuckets = 14 // len(HistogramBounds) + the +Inf overflow bucket

// Histogram is a fixed-bucket log-scale histogram (see HistogramBounds).
// Observe is lock- and allocation-free: one atomic add for the bucket, one
// for the count, and a CAS loop for the float64 sum.
type Histogram struct {
	counts  [histBuckets]atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for ; i < len(HistogramBounds); i++ {
		if v <= HistogramBounds[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// bucketCounts returns the cumulative per-bucket counts (Prometheus
// histograms are cumulative: bucket i counts observations <= bound i).
func (h *Histogram) bucketCounts() [histBuckets]int64 {
	var out [histBuckets]int64
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered series: a family name, an optional label set
// (kept as the literal `{...}` registration text) and the typed value.
type metric struct {
	name   string // full registration name, labels included
	family string // name up to the label block
	labels string // `name="value",...` inside the braces, "" when unlabeled
	help   string
	kind   metricKind
	ctr    *Counter
	gauge  *Gauge
	fn     func() float64
	hist   *Histogram
}

// Registry holds named metrics and renders them in Prometheus text format.
// Construct with NewRegistry, or use the process-wide Default registry the
// package-level constructors register into.
type Registry struct {
	mu       sync.Mutex
	byName   map[string]*metric
	families map[string]*metric // first-registered series per family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*metric{}, families: map[string]*metric{}}
}

// Default is the process-wide registry. Package-level constructors
// (NewCounter, NewGauge, NewGaugeFunc, NewHistogram) register into it and
// the /metrics endpoint serves it unless told otherwise.
var Default = NewRegistry()

// splitName separates a registration name into family and label text:
// `spmm_runs_total{status="ok"}` → (`spmm_runs_total`, `status="ok"`).
func splitName(name string) (family, labels string, err error) {
	family = name
	if i := strings.IndexByte(name, '{'); i >= 0 {
		if !strings.HasSuffix(name, "}") || i == len(name)-2 {
			return "", "", fmt.Errorf("obs: malformed label block in %q", name)
		}
		family, labels = name[:i], name[i+1:len(name)-1]
	}
	if family == "" {
		return "", "", fmt.Errorf("obs: empty metric name %q", name)
	}
	for i, r := range family {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return "", "", fmt.Errorf("obs: invalid metric name %q", name)
		}
	}
	return family, labels, nil
}

// register creates or fetches the named series, enforcing the collision
// rules. It panics on misuse (wrong kind or malformed name): registration
// happens at package init in this repository, so failure is a programming
// error, caught by any test that imports the package.
func (r *Registry) register(name, help string, kind metricKind) *metric {
	family, labels, err := splitName(name)
	if err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", name, kind, m.kind))
		}
		return m
	}
	if f, ok := r.families[family]; ok && f.kind.String() != kind.String() {
		panic(fmt.Sprintf("obs: family %s mixes %s and %s series", family, f.kind, kind))
	}
	m := &metric{name: name, family: family, labels: labels, help: help, kind: kind}
	switch kind {
	case kindCounter:
		m.ctr = &Counter{}
	case kindGauge:
		m.gauge = &Gauge{}
	case kindHistogram:
		m.hist = &Histogram{}
	}
	r.byName[name] = m
	if _, ok := r.families[family]; !ok {
		r.families[family] = m
	}
	return m
}

// NewCounter returns the registered counter, creating it on first use. The
// name may carry a constant label block: `spmm_runs_total{status="ok"}`.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.register(name, help, kindCounter).ctr
}

// NewGauge returns the registered gauge, creating it on first use.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge).gauge
}

// NewGaugeFunc registers a gauge whose value is computed at scrape time by
// fn. Re-registering the same name replaces the function (the campaign
// harness re-registers its checkpoint-age gauge per campaign).
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	m := r.register(name, help, kindGaugeFunc)
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// NewHistogram returns the registered histogram, creating it on first use.
func (r *Registry) NewHistogram(name, help string) *Histogram {
	return r.register(name, help, kindHistogram).hist
}

// NewCounter registers into the Default registry.
func NewCounter(name, help string) *Counter { return Default.NewCounter(name, help) }

// NewGauge registers into the Default registry.
func NewGauge(name, help string) *Gauge { return Default.NewGauge(name, help) }

// NewGaugeFunc registers into the Default registry.
func NewGaugeFunc(name, help string, fn func() float64) { Default.NewGaugeFunc(name, help, fn) }

// NewHistogram registers into the Default registry.
func NewHistogram(name, help string) *Histogram { return Default.NewHistogram(name, help) }

// snapshot returns the registered series grouped by family, families sorted
// by name and series within a family sorted by label text — the stable
// order the exposition writer and the golden test rely on.
func (r *Registry) snapshot() [][]*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	byFamily := map[string][]*metric{}
	for _, m := range r.byName {
		byFamily[m.family] = append(byFamily[m.family], m)
	}
	families := make([]string, 0, len(byFamily))
	for f := range byFamily {
		families = append(families, f)
	}
	sort.Strings(families)
	out := make([][]*metric, 0, len(families))
	for _, f := range families {
		series := byFamily[f]
		sort.Slice(series, func(i, j int) bool { return series[i].labels < series[j].labels })
		out = append(out, series)
	}
	return out
}
