package obs_test

// Cross-layer acceptance test: drive the simulated GPU, the analytical cache
// machine, and the campaign harness for real, then assert the counters each
// layer flushes into the Default registry actually moved. This is the
// end-to-end contract behind `spmmbench -serve`: a scrape mid-campaign must
// show live hardware and progress numbers, not zeros.

import (
	"context"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/formats"
	"repro/internal/gpusim"
	"repro/internal/harness"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/obs"
)

// metricValue sums every sample of the named family in the Default
// registry's exposition (labelled series included), so callers can diff
// before/after without caring how the family is partitioned.
func metricValue(t *testing.T, family string) float64 {
	t.Helper()
	var b strings.Builder
	if err := obs.Default.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, line := range strings.Split(b.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, rest, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		if base, _, _ := strings.Cut(name, "{"); base != family {
			continue
		}
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		sum += v
	}
	return sum
}

func randomCOO(rows, cols, nnz int) *matrix.COO[float64] {
	rng := rand.New(rand.NewSource(42))
	m := matrix.NewCOO[float64](rows, cols, nnz)
	for i := 0; i < nnz; i++ {
		m.Append(int32(rng.Intn(rows)), int32(rng.Intn(cols)), rng.NormFloat64())
	}
	m.Dedup()
	return m
}

func TestSimulatorCountersFlow(t *testing.T) {
	const k = 16
	coo := randomCOO(256, 256, 2048)
	csr := formats.CSRFromCOO(coo)
	b := matrix.NewDenseRand[float64](coo.Cols, k, 1)
	c := matrix.NewDense[float64](coo.Rows, k)

	l2Before := metricValue(t, "spmm_gpusim_l2_hits_total")
	dramBefore := metricValue(t, "spmm_gpusim_dram_bytes_total")
	dev, err := gpusim.NewDevice(gpusim.TestDevice(1 << 30))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gpusim.SpMMCSR(dev, csr, b, c, k); err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, "spmm_gpusim_l2_hits_total"); got <= l2Before {
		t.Errorf("spmm_gpusim_l2_hits_total did not increase: %v -> %v", l2Before, got)
	}
	if got := metricValue(t, "spmm_gpusim_dram_bytes_total"); got <= dramBefore {
		t.Errorf("spmm_gpusim_dram_bytes_total did not increase: %v -> %v", dramBefore, got)
	}

	machBefore := metricValue(t, "spmm_machine_dram_bytes_total")
	simsBefore := metricValue(t, "spmm_machine_sims_total")
	if _, err := machine.SimulateCSR(machine.GraceArm(), csr, k); err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, "spmm_machine_dram_bytes_total"); got <= machBefore {
		t.Errorf("spmm_machine_dram_bytes_total did not increase: %v -> %v", machBefore, got)
	}
	if got := metricValue(t, "spmm_machine_sims_total"); got != simsBefore+1 {
		t.Errorf("spmm_machine_sims_total = %v, want %v", got, simsBefore+1)
	}

	dispatchBefore := metricValue(t, "spmm_kernels_dispatch_total")
	if err := kernels.CSRParallelOpts(csr, b, c, k, 2, kernels.Opts{}); err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, "spmm_kernels_dispatch_total"); got != dispatchBefore+1 {
		t.Errorf("spmm_kernels_dispatch_total = %v, want %v", got, dispatchBefore+1)
	}
}

func TestHarnessCountersFlow(t *testing.T) {
	runsBefore := metricValue(t, "spmm_harness_runs_total")
	okBefore := metricValue(t, `spmm_harness_run_status_total`)

	h, err := harness.New(harness.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	coo := randomCOO(64, 64, 256)
	plan := []harness.Spec{
		{
			Kernel: "csr-serial", Matrix: "rand64",
			Load:   func() (*matrix.COO[float64], error) { return coo, nil },
			Params: core.Params{Reps: 1, Threads: 1, BlockSize: 4, K: 8, Verify: true, Seed: 1},
		},
	}
	outs, err := h.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Status != harness.StatusOK {
		t.Fatalf("unexpected outcomes: %+v", outs)
	}

	if got := metricValue(t, "spmm_harness_runs_total"); got != runsBefore+1 {
		t.Errorf("spmm_harness_runs_total = %v, want %v", got, runsBefore+1)
	}
	if got := metricValue(t, "spmm_harness_run_status_total"); got != okBefore+1 {
		t.Errorf("spmm_harness_run_status_total = %v, want %v", got, okBefore+1)
	}
}
