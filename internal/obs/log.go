package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// This file is the suite's structured-logging layer: slog handlers in text
// or JSON form (-log-format), leveled (-log-level), with campaign-scoped
// fields (campaign, kernel, matrix, format) attached once via context and
// stamped onto every record logged under that context — replacing the
// ad-hoc fmt.Fprintf progress prints of the harness and CLIs.

type logAttrsKey struct{}

// WithLogAttrs returns a context carrying the given attributes; every
// record logged through a handler built by NewLogger with that context
// (logger.InfoContext etc.) gains them. Nested calls accumulate.
func WithLogAttrs(ctx context.Context, attrs ...slog.Attr) context.Context {
	if len(attrs) == 0 {
		return ctx
	}
	if prev, ok := ctx.Value(logAttrsKey{}).([]slog.Attr); ok {
		attrs = append(prev[:len(prev):len(prev)], attrs...)
	}
	return context.WithValue(ctx, logAttrsKey{}, attrs)
}

// ctxHandler decorates an slog.Handler with the context-attrs contract of
// WithLogAttrs.
type ctxHandler struct {
	inner slog.Handler
}

func (h ctxHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h ctxHandler) Handle(ctx context.Context, r slog.Record) error {
	if attrs, ok := ctx.Value(logAttrsKey{}).([]slog.Attr); ok {
		r.AddAttrs(attrs...)
	}
	return h.inner.Handle(ctx, r)
}

func (h ctxHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return ctxHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h ctxHandler) WithGroup(name string) slog.Handler {
	return ctxHandler{inner: h.inner.WithGroup(name)}
}

// ParseLogLevel maps the -log-level flag values (debug, info, warn, error)
// to slog levels.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error)", s)
}

// NewLogger builds a leveled, context-aware logger writing to w in the
// given format ("text" or "json"). Timestamps stay on — campaign logs are
// read after the fact — but the source attribute is omitted.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (text or json)", format)
	}
	return slog.New(ctxHandler{inner: h}), nil
}
