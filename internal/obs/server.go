package obs

import (
	"context"
	"expvar"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// ServerOpts configures the observability HTTP server.
type ServerOpts struct {
	// Registry is the metric source for /metrics; nil means Default.
	Registry *Registry
	// Pprof mounts net/http/pprof under /debug/pprof/ (the mux-local
	// equivalent of spmmbench's PR-3 `-pprof` endpoint).
	Pprof bool
	// Log receives server lifecycle notes; nil discards them.
	Log *slog.Logger
}

// publishExpvarOnce guards the one-time expvar publication of the metric-
// family mirror (expvar.Publish panics on duplicate names). The published
// func reads expvarRegistry at call time, so later NewMux calls with a
// different registry retarget the mirror instead of being stuck on Default.
var (
	publishExpvarOnce sync.Once
	expvarRegistry    atomic.Pointer[Registry]
)

// NewMux builds the observability mux: /metrics (Prometheus text format),
// /healthz (liveness), /debug/vars (expvar) and, when opts.Pprof is set,
// /debug/pprof/.
func NewMux(opts ServerOpts) *http.ServeMux {
	reg := opts.Registry
	if reg == nil {
		reg = Default
	}
	expvarRegistry.Store(reg)
	publishExpvarOnce.Do(func() {
		expvar.Publish("spmm_metric_families", expvar.Func(func() any {
			r := expvarRegistry.Load()
			if r == nil {
				r = Default
			}
			r.mu.Lock()
			n := len(r.families)
			r.mu.Unlock()
			return n
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil && opts.Log != nil {
			opts.Log.Warn("metrics write failed", "err", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	if opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Server is a running observability endpoint. It owns its listener, so
// `:0` addresses work (Addr reports the bound port) and Close shuts the
// handler pool down gracefully — no goroutine outlives a completed Close.
type Server struct {
	srv  *http.Server
	addr string
	done chan struct{}
	err  error
}

// Serve binds addr and starts serving the observability mux in a
// background goroutine. The returned Server reports the bound address
// (useful with ":0") and must be Closed to release the port.
func Serve(addr string, opts ServerOpts) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		srv: &http.Server{
			Handler:           NewMux(opts),
			ReadHeaderTimeout: 5 * time.Second,
		},
		addr: ln.Addr().String(),
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.err = err
			if opts.Log != nil {
				opts.Log.Error("metrics server failed", "addr", s.addr, "err", err)
			}
		}
	}()
	if opts.Log != nil {
		opts.Log.Info("metrics server listening",
			"addr", s.addr, "endpoints", "/metrics /healthz /debug/vars")
	}
	return s, nil
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.addr
}

// Close gracefully shuts the server down: in-flight requests finish (bounded
// by ctx), the listener closes, and the serve goroutine exits before Close
// returns. Closing a nil server is a no-op.
func (s *Server) Close(ctx context.Context) error {
	if s == nil {
		return nil
	}
	err := s.srv.Shutdown(ctx)
	<-s.done
	if err == nil {
		err = s.err
	}
	return err
}

// CloseOn shuts the server down as soon as ctx is cancelled — the campaign
// wiring: `go srv.CloseOn(ctx)` ties the endpoint's lifetime to the
// campaign context, so SIGINT (signal.NotifyContext) stops the server
// cleanly along with the run. The shutdown grace period is fixed at two
// seconds.
func (s *Server) CloseOn(ctx context.Context) {
	if s == nil {
		return
	}
	<-ctx.Done()
	shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	s.Close(shutCtx)
}
