package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("t_srv_total", "help").Add(5)
	s, err := Serve("127.0.0.1:0", ServerOpts{Registry: r})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())
	base := "http://" + s.Addr()

	code, body, hdr := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics content type = %q", ct)
	}
	if !strings.Contains(body, "t_srv_total 5\n") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	code, body, _ = get(t, base+"/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q, want 200 \"ok\\n\"", code, body)
	}

	code, body, _ = get(t, base+"/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "spmm_metric_families") {
		t.Fatalf("/debug/vars = %d, body missing spmm_metric_families:\n%s", code, body)
	}
}

func TestServerPprofMount(t *testing.T) {
	s, err := Serve("127.0.0.1:0", ServerOpts{Registry: NewRegistry(), Pprof: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())
	code, _, _ := get(t, "http://"+s.Addr()+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status = %d", code)
	}
}

// TestServerGracefulShutdownNoLeak asserts the whole server lifecycle leaves
// no goroutine behind: serve, scrape, Close, and the goroutine count returns
// to its starting point.
func TestServerGracefulShutdownNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	s, err := Serve("127.0.0.1:0", ServerOpts{Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	get(t, "http://"+addr+"/healthz")
	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A fresh Serve on the same port must succeed: the listener is released.
	s2, err := Serve(addr, ServerOpts{Registry: NewRegistry()})
	if err != nil {
		t.Fatalf("rebinding freed address %s: %v", addr, err)
	}
	if err := s2.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Goroutines wind down asynchronously after Shutdown returns; poll
	// briefly before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after shutdown", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerCloseOnContextCancel covers the campaign wiring: the server is
// tied to a context (campaign completion or SIGINT via signal.NotifyContext)
// and stops serving once that context is cancelled.
func TestServerCloseOnContextCancel(t *testing.T) {
	s, err := Serve("127.0.0.1:0", ServerOpts{Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go s.CloseOn(ctx)

	base := "http://" + s.Addr()
	if code, _, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz before cancel = %d", code)
	}

	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := http.Get(base + "/healthz"); err != nil {
			break // connection refused: server is down
		}
		if time.Now().After(deadline) {
			t.Fatal("server still serving 2s after context cancellation")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestNilServerIsNoOp(t *testing.T) {
	var s *Server
	if s.Addr() != "" {
		t.Fatal("nil server Addr should be empty")
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("nil server Close: %v", err)
	}
	s.CloseOn(context.Background()) // must not block or panic on nil
}

// TestExpvarMirrorTracksConfiguredRegistry pins the NewMux fix: the expvar
// spmm_metric_families mirror must report the registry the mux was
// configured with, not unconditionally snapshot obs.Default.
func TestExpvarMirrorTracksConfiguredRegistry(t *testing.T) {
	custom := NewRegistry()
	custom.NewCounter("t_expvar_a_total", "help")
	custom.NewCounter("t_expvar_b_total", "help")
	custom.NewGauge("t_expvar_c", "help")

	s, err := Serve("127.0.0.1:0", ServerOpts{Registry: custom})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	_, body, _ := get(t, "http://"+s.Addr()+"/debug/vars")
	var vars struct {
		Families int `json:"spmm_metric_families"`
	}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("parsing /debug/vars: %v", err)
	}
	if vars.Families != 3 {
		t.Fatalf("spmm_metric_families = %d, want 3 (the configured registry's families, not Default's)", vars.Families)
	}
}
