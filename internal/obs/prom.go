package obs

import (
	"bufio"
	"io"
	"strconv"
)

// WritePrometheus renders every registered metric in Prometheus text
// exposition format v0.0.4: one `# HELP` and `# TYPE` header per family,
// families sorted by name, series within a family sorted by their label
// sets, histograms expanded into cumulative `_bucket{le=...}` series plus
// `_sum` and `_count`. The output is deterministic for a given set of
// values — the golden test pins the schema.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, series := range r.snapshot() {
		head := series[0]
		if head.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(head.family)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(head.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(head.family)
		bw.WriteByte(' ')
		bw.WriteString(head.kind.String())
		bw.WriteByte('\n')
		for _, m := range series {
			switch m.kind {
			case kindCounter:
				writeSample(bw, m.family, m.labels, "", formatInt(m.ctr.Value()))
			case kindGauge:
				writeSample(bw, m.family, m.labels, "", formatFloat(m.gauge.Value()))
			case kindGaugeFunc:
				v := 0.0
				if m.fn != nil {
					v = m.fn()
				}
				writeSample(bw, m.family, m.labels, "", formatFloat(v))
			case kindHistogram:
				counts := m.hist.bucketCounts()
				for i, bound := range HistogramBounds {
					writeSample(bw, m.family+"_bucket", m.labels,
						`le="`+formatFloat(bound)+`"`, formatInt(counts[i]))
				}
				writeSample(bw, m.family+"_bucket", m.labels, `le="+Inf"`,
					formatInt(counts[histBuckets-1]))
				writeSample(bw, m.family+"_sum", m.labels, "", formatFloat(m.hist.Sum()))
				writeSample(bw, m.family+"_count", m.labels, "", formatInt(m.hist.Count()))
			}
		}
	}
	return bw.Flush()
}

// writeSample writes one exposition line. labels and extra are raw
// `name="value"` lists; either may be empty.
func writeSample(bw *bufio.Writer, name, labels, extra, value string) {
	bw.WriteString(name)
	if labels != "" || extra != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		if labels != "" && extra != "" {
			bw.WriteByte(',')
		}
		bw.WriteString(extra)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
