package obs

import (
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestNewLoggerJSONWithContextAttrs(t *testing.T) {
	var b strings.Builder
	log, err := NewLogger(&b, "json", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithLogAttrs(context.Background(),
		slog.String("campaign", "sweep-1"), slog.String("kernel", "csr"))
	ctx = WithLogAttrs(ctx, slog.String("matrix", "tri-64")) // accumulates
	log.InfoContext(ctx, "run complete", "reps", 3)

	var rec map[string]any
	if err := json.Unmarshal([]byte(b.String()), &rec); err != nil {
		t.Fatalf("output is not one JSON record: %v\n%s", err, b.String())
	}
	for k, want := range map[string]any{
		"msg": "run complete", "campaign": "sweep-1",
		"kernel": "csr", "matrix": "tri-64", "reps": float64(3),
	} {
		if rec[k] != want {
			t.Errorf("record[%q] = %v, want %v", k, rec[k], want)
		}
	}
}

func TestNewLoggerTextAndLeveling(t *testing.T) {
	var b strings.Builder
	log, err := NewLogger(&b, "text", slog.LevelWarn)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hidden")
	log.Warn("shown")
	out := b.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("info record leaked through warn level:\n%s", out)
	}
	if !strings.Contains(out, "shown") {
		t.Fatalf("warn record missing:\n%s", out)
	}
}

func TestNewLoggerRejectsUnknownFormat(t *testing.T) {
	if _, err := NewLogger(&strings.Builder{}, "xml", slog.LevelInfo); err == nil {
		t.Fatal("expected error for unknown format")
	}
}

func TestParseLogLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "error": slog.LevelError,
		" ERROR ": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLogLevel("verbose"); err == nil {
		t.Fatal("expected error for unknown level")
	}
}

func TestCtxHandlerWithGroup(t *testing.T) {
	var b strings.Builder
	log, err := NewLogger(&b, "json", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithLogAttrs(context.Background(), slog.String("campaign", "c1"))
	log.WithGroup("run").InfoContext(ctx, "msg", "rep", 1)
	var rec map[string]any
	if err := json.Unmarshal([]byte(b.String()), &rec); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, b.String())
	}
	grp, _ := rec["run"].(map[string]any)
	if grp == nil || grp["rep"] != float64(1) {
		t.Fatalf("grouped attr missing: %v", rec)
	}
}
