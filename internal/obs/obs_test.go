package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("t_counter_total", "a counter")
	c.Add(3)
	c.Inc()
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if again := r.NewCounter("t_counter_total", "a counter"); again != c {
		t.Fatal("re-registration did not return the same counter")
	}

	g := r.NewGauge("t_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}

	h := r.NewHistogram("t_seconds", "a histogram")
	h.Observe(0.5e-3) // le 1e-3 bucket
	h.Observe(2)      // le 1e1 bucket
	h.Observe(5e6)    // +Inf overflow
	if h.Count() != 3 {
		t.Fatalf("hist count = %d, want 3", h.Count())
	}
	if math.Abs(h.Sum()-(0.5e-3+2+5e6)) > 1e-9 {
		t.Fatalf("hist sum = %v", h.Sum())
	}
	counts := h.bucketCounts()
	if counts[len(counts)-1] != 3 {
		t.Fatalf("+Inf cumulative count = %d, want 3", counts[len(counts)-1])
	}
}

func TestNilMetricHandlesAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metric handles must read as zero")
	}
}

func TestRegistrationCollisions(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("t_total", "help")
	mustPanic(t, "kind mismatch on the same name", func() {
		r.NewGauge("t_total", "help")
	})
	r.NewCounter(`t_labeled_total{status="ok"}`, "help")
	mustPanic(t, "family mixing counter and histogram", func() {
		r.NewHistogram(`t_labeled_total{status="bad"}`, "help")
	})
	mustPanic(t, "malformed label block", func() {
		r.NewCounter(`t_bad{`, "help")
	})
	mustPanic(t, "invalid metric name", func() {
		r.NewCounter("9starts_with_digit", "help")
	})
	mustPanic(t, "empty name", func() {
		r.NewCounter("", "help")
	})
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestGaugeFuncReRegistrationReplaces(t *testing.T) {
	r := NewRegistry()
	r.NewGaugeFunc("t_age_seconds", "help", func() float64 { return 1 })
	r.NewGaugeFunc("t_age_seconds", "help", func() float64 { return 2 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "t_age_seconds 2\n") {
		t.Fatalf("re-registered gauge func not in effect:\n%s", b.String())
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("t_conc_total", "")
	g := r.NewGauge("t_conc_gauge", "")
	h := r.NewHistogram("t_conc_seconds", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %v, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("hist count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-8) > 1e-9 {
		t.Fatalf("hist sum = %v, want 8", h.Sum())
	}
}

// TestHotPathZeroAlloc is the registry's alloc audit, mirroring the
// tracer's: once a handle is registered, Add/Set/Observe must never reach
// the heap — the contract that lets the simulators and kernels update
// metrics inside their hot loops.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("t_alloc_total", "")
	g := r.NewGauge("t_alloc_gauge", "")
	h := r.NewHistogram("t_alloc_seconds", "")
	if n := testing.AllocsPerRun(100, func() {
		c.Add(1)
		c.Inc()
		g.Set(3.5)
		g.Add(0.5)
		h.Observe(1e-4)
	}); n != 0 {
		t.Fatalf("metric hot path allocates %v times per op, want 0", n)
	}
}

func TestHistogramBucketAssignment(t *testing.T) {
	h := &Histogram{}
	h.Observe(1e-9)   // exactly on the first bound → bucket 0
	h.Observe(1.5e-9) // just above → bucket 1
	counts := h.bucketCounts()
	if counts[0] != 1 {
		t.Fatalf("bucket[0] cumulative = %d, want 1", counts[0])
	}
	if counts[1] != 2 {
		t.Fatalf("bucket[1] cumulative = %d, want 2", counts[1])
	}
}
