package harness

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Campaign-progress metrics, exported to the process-wide registry alongside
// the harness's own CounterSet (which still feeds the end-of-campaign summary
// table). spmm_harness_runs_total counts every settled run — the live
// progress figure a `-serve` scrape watches climb during a campaign.
var (
	obsRuns = obs.NewCounter("spmm_harness_runs_total",
		"Runs settled by the campaign harness (ok, degraded, failed or skipped).")
	obsStatusOK = obs.NewCounter(`spmm_harness_run_status_total{status="ok"}`,
		"Settled runs by terminal status.")
	obsStatusDegraded = obs.NewCounter(`spmm_harness_run_status_total{status="degraded"}`,
		"Settled runs by terminal status.")
	obsStatusFailed = obs.NewCounter(`spmm_harness_run_status_total{status="failed"}`,
		"Settled runs by terminal status.")
	obsStatusSkipped = obs.NewCounter(`spmm_harness_run_status_total{status="skipped"}`,
		"Settled runs by terminal status.")
	obsRetries = obs.NewCounter("spmm_harness_retries_total",
		"Retry attempts granted to transient failures.")
	obsBackoffSeconds = obs.NewHistogram("spmm_harness_backoff_seconds",
		"Backoff delays slept between retry attempts, in seconds.")
	obsDegrades = obs.NewCounter("spmm_harness_degrades_total",
		"Format degradations forced by the memory budget.")
)

// lastAppend is the unix-nano timestamp of the last successful journal
// append; zero until the first checkpoint of the process.
var lastAppend atomic.Int64

func init() {
	obs.NewGaugeFunc("spmm_harness_checkpoint_age_seconds",
		"Seconds since the journal last grew (-1 before the first checkpoint).",
		func() float64 {
			ns := lastAppend.Load()
			if ns == 0 {
				return -1
			}
			return time.Since(time.Unix(0, ns)).Seconds()
		})
}

// countOutcome exports one settled run.
func countOutcome(status string) {
	obsRuns.Inc()
	switch status {
	case StatusOK:
		obsStatusOK.Inc()
	case StatusDegraded:
		obsStatusDegraded.Inc()
	case StatusFailed:
		obsStatusFailed.Inc()
	case StatusSkipped:
		obsStatusSkipped.Inc()
	}
}
