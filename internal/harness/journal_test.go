package harness

import (
	"bytes"
	"errors"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestJournalTornTailRepair pins the crash-mid-append story end to end: a
// journal whose file ends in a partial line reopens cleanly (torn bytes
// truncated, warning logged), new appends land after the intact records —
// never fused onto the torn one — and a subsequent read sees a clean
// stream.
func TestJournalTornTailRepair(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")

	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{ID: "a", Status: StatusOK, Kernel: "csr-omp", Matrix: "m1"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{ID: "b", Status: StatusFailed, Class: "oom"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail the way SIGKILL mid-write does: half a record, no '\n'.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"c","sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Resume-style read before repair: intact records plus a torn flag.
	recs, torn, err := ReadJournalTorn(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || !torn {
		t.Fatalf("pre-repair read: %d records torn=%v, want 2 records torn=true", len(recs), torn)
	}

	// Reopen for appending: the torn bytes must be truncated, with a warning.
	var logBuf bytes.Buffer
	j, err = OpenJournalOpts(path, JournalOpts{Log: slog.New(slog.NewTextHandler(&logBuf, nil))})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(logBuf.String(), "torn trailing record") {
		t.Fatalf("repair logged no warning: %q", logBuf.String())
	}
	if err := j.Append(Record{ID: "c", Status: StatusOK}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	recs, torn, err = ReadJournalTorn(path)
	if err != nil || torn {
		t.Fatalf("post-repair read: torn=%v err=%v, want a clean stream", torn, err)
	}
	if len(recs) != 3 || recs[0].ID != "a" || recs[1].ID != "b" || recs[2].ID != "c" {
		t.Fatalf("post-repair records = %+v, want [a b c]", recs)
	}
}

// TestRepairTornTailLongLine exercises the chunked walk-back: a torn tail
// longer than one 4096-byte read chunk still truncates back to the last
// newline.
func TestRepairTornTailLongLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	intact := `{"id":"a","status":"ok"}` + "\n"
	torn := `{"id":"b","error":"` + strings.Repeat("x", 10000) // no close, no newline
	if err := os.WriteFile(path, []byte(intact+torn), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := RepairTornTail(f)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if dropped != int64(len(torn)) {
		t.Fatalf("dropped %d bytes, want %d", dropped, len(torn))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != intact {
		t.Fatalf("repaired file = %q, want just the intact record", data)
	}
}

// TestRepairTornTailNoNewlineAtAll covers a file that is one giant torn
// line (crash during the very first append): everything is dropped.
func TestRepairTornTailNoNewlineAtAll(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	if err := os.WriteFile(path, []byte(`{"id":"only","st`), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := RepairTornTail(f)
	f.Close()
	if err != nil || dropped != 16 {
		t.Fatalf("dropped=%d err=%v, want 16/nil", dropped, err)
	}
	if info, _ := os.Stat(path); info.Size() != 0 {
		t.Fatalf("file still holds %d bytes after full-tear repair", info.Size())
	}
}

// TestJournalMidFileCorruptionFails pins that tolerance is strictly for the
// FINAL line: garbage in the middle of the stream is an error, not a skip.
func TestJournalMidFileCorruptionFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	content := `{"id":"a","status":"ok"}` + "\n" + `not json at all` + "\n" + `{"id":"b","status":"ok"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadJournalTorn(path); err == nil {
		t.Fatal("mid-file corruption read back as a valid journal")
	}
}

// TestJournalNoSyncStillDurableOnClose pins the opt-out: NoSync appends
// still land in the file (the kernel holds them) and read back fine.
func TestJournalNoSyncStillDurableOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournalOpts(path, JournalOpts{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if j.sync {
		t.Fatal("NoSync journal still has per-append fsync armed")
	}
	if err := j.Append(Record{ID: "a", Status: StatusOK}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJournal(path)
	if err != nil || len(recs) != 1 || recs[0].ID != "a" {
		t.Fatalf("recs=%+v err=%v, want the one appended record", recs, err)
	}
	// Default open fsyncs.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !j2.sync {
		t.Fatal("default journal does not fsync appends")
	}
}

// TestInjectorFireFaults pins the durability fault kinds the serve chaos
// suite is built on: FaultErr carries its cause, FaultTorn wraps
// ErrTornWrite, counts are spent per firing, and a nil injector is inert.
func TestInjectorFireFaults(t *testing.T) {
	var nilInj *Injector
	if err := nilInj.Fire("anything", PointWALAppend); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}

	cause := errors.New("no space left on device")
	in := NewInjector(1,
		Fault{Point: PointWALAppend, Kind: FaultErr, Err: cause},
		Fault{Point: PointWALSync, Kind: FaultErr, Count: 2},
		Fault{Point: PointSnapshot, Kind: FaultTorn, Run: "snap"},
	)

	err := in.Fire("wal|abc", PointWALAppend)
	if err == nil || !errors.Is(err, cause) {
		t.Fatalf("FaultErr lost its cause: %v", err)
	}
	if err := in.Fire("wal|abc", PointWALAppend); err != nil {
		t.Fatalf("single-count fault fired twice: %v", err)
	}

	for i := 0; i < 2; i++ {
		if err := in.Fire("wal|abc", PointWALSync); err == nil {
			t.Fatalf("firing %d of a Count=2 fault did nothing", i+1)
		}
	}
	if err := in.Fire("wal|abc", PointWALSync); err != nil {
		t.Fatalf("Count=2 fault fired a third time: %v", err)
	}

	// Run-substring matching gates the torn fault.
	if err := in.Fire("other", PointSnapshot); err != nil {
		t.Fatalf("fault fired for a non-matching run: %v", err)
	}
	err = in.Fire("snapshot", PointSnapshot)
	if err == nil || !errors.Is(err, ErrTornWrite) {
		t.Fatalf("FaultTorn does not wrap ErrTornWrite: %v", err)
	}

	// Point names used in chaos-test output must stay stable.
	for p, want := range map[FaultPoint]string{
		PointWALAppend: "wal-append",
		PointWALSync:   "wal-sync",
		PointSnapshot:  "snapshot",
	} {
		if p.String() != want {
			t.Fatalf("FaultPoint %d renders %q, want %q", p, p.String(), want)
		}
	}
}
