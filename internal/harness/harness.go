package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"runtime/debug"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Config controls a campaign's resilience features. The zero value runs
// with everything disabled — no timeout, no retries, no budget, no journal
// — which makes the harness behave like a panic-contained core.Run loop.
type Config struct {
	// Timeout bounds each attempt; 0 disables. Cancellation-aware kernels
	// (CSR, COO) stop cooperatively; others are abandoned after a short
	// grace period and their goroutine drains in the background.
	Timeout time.Duration
	// Retries is the number of extra attempts granted to transient
	// failures. Deterministic failures (panic, verify, timeout) and
	// simulated kernels (core.ModelTimed) are never retried.
	Retries int
	// Backoff shapes the retry delays; the zero value means
	// DefaultBackoff.
	Backoff Backoff
	// MemBudget is the per-run formatted-footprint budget in bytes;
	// 0 disables the guard. Over-budget formats degrade along
	// Fallback's chain (padded/blocked → csr → coo) before failing.
	MemBudget int64
	// Journal is the JSONL checkpoint path; "" disables journaling.
	Journal string
	// JournalNoSync skips the per-append journal fsync (crash-durable by
	// default; opt out on fsync-bound disks).
	JournalNoSync bool
	// Resume skips (and replays from the journal) runs already recorded.
	Resume bool
	// Seed drives backoff jitter deterministically.
	Seed int64
	// Injector injects test faults; nil in production.
	Injector *Injector
	// Log receives progress notes as text records; nil discards them.
	// Ignored when Logger is set.
	Log io.Writer
	// Logger, when non-nil, receives structured progress records (the
	// CLIs pass their -log-format/-log-level logger here). When nil but
	// Log is set, a plain text logger over Log is built.
	Logger *slog.Logger
	// Trace, when non-nil and enabled, receives recovery-machinery spans
	// (attempt/backoff intervals, retry/degrade/skip instants on lane 0)
	// and is forwarded to core.Params so the benchmark phases of
	// harness-driven runs land in the same trace.
	Trace *trace.Tracer
}

// Spec identifies one run of a campaign plan.
type Spec struct {
	// Kernel is the registry kernel name.
	Kernel string
	// Matrix is the display/journal name of the matrix.
	Matrix string
	// Load produces the COO matrix. The harness caches the result per
	// Matrix name, so cross products over kernels pay the load once.
	Load func() (*matrix.COO[float64], error)
	// Opts carries kernel construction options (GPU device, ELL layout).
	Opts core.Options
	// Params are the benchmark parameters for this run.
	Params core.Params
}

// id builds the campaign-unique run identity. It includes the matrix's
// dimensions and nonzero count so the same name at a different scale never
// aliases in the journal.
func (s Spec) id(m *matrix.COO[float64]) string {
	p := s.Params
	return fmt.Sprintf("%s|%s|%dx%d+%d|k%d|t%d|b%d|n%d|s%d",
		s.Kernel, s.Matrix, m.Rows, m.Cols, m.NNZ(),
		p.K, p.Threads, p.BlockSize, p.Reps, p.Seed)
}

// Outcome is the harness's per-run verdict.
type Outcome struct {
	Spec Spec
	// ID is the journal identity of the run ("" if the matrix failed to
	// load before an ID could be formed).
	ID string
	// Status is one of StatusOK, StatusDegraded, StatusFailed,
	// StatusSkipped.
	Status string
	// RanKernel is the kernel actually executed (differs from Spec.Kernel
	// after degradation).
	RanKernel string
	// Result is valid when Status is ok/degraded, or skipped with a
	// journaled result.
	Result core.Result
	// Err is the final *RunError for failed runs.
	Err error
	// Attempts is how many attempts were made (0 for skipped runs).
	Attempts int
}

// Harness executes campaign plans with per-run containment and recovery.
type Harness struct {
	cfg      Config
	counters *metrics.CounterSet
	journal  *Journal
	done     map[string]Record
	rng      *rand.Rand
	matrices map[string]*matrix.COO[float64]
	// log is the structured progress logger; nil discards records.
	log *slog.Logger
	// sleep is time.Sleep, replaceable by tests.
	sleep func(time.Duration)
}

// New builds a harness, loading the journal's completed runs when resuming.
func New(cfg Config) (*Harness, error) {
	h := &Harness{
		cfg:      cfg,
		counters: metrics.NewCounterSet("ok", "retried", "degraded", "skipped", "failed"),
		done:     map[string]Record{},
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		matrices: map[string]*matrix.COO[float64]{},
		sleep:    time.Sleep,
	}
	h.log = cfg.Logger
	if h.log == nil && cfg.Log != nil {
		// Legacy io.Writer sink: wrap it in a text handler so callers that
		// only set Log keep getting human-readable progress lines.
		log, err := obs.NewLogger(cfg.Log, "text", slog.LevelInfo)
		if err != nil {
			return nil, err
		}
		h.log = log
	}
	if cfg.Resume && cfg.Journal != "" {
		recs, torn, err := ReadJournalTorn(cfg.Journal)
		if err != nil {
			return nil, err
		}
		if torn && h.log != nil {
			h.log.Warn("journal: skipped torn trailing record on resume",
				slog.String("path", cfg.Journal))
		}
		h.done = CompletedIDs(recs)
	}
	if cfg.Journal != "" {
		j, err := OpenJournalOpts(cfg.Journal, JournalOpts{NoSync: cfg.JournalNoSync, Log: h.log})
		if err != nil {
			return nil, err
		}
		h.journal = j
	}
	return h, nil
}

// Close releases the journal.
func (h *Harness) Close() error {
	if h.journal != nil {
		return h.journal.Close()
	}
	return nil
}

// Counters exposes the campaign tallies (ok / retried / degraded /
// skipped / failed).
func (h *Harness) Counters() *metrics.CounterSet { return h.counters }

// logInfo and logWarn emit one structured progress record; both are no-ops
// without a configured logger. ctx may carry campaign attributes installed
// with obs.WithLogAttrs.
func (h *Harness) logInfo(ctx context.Context, msg string, args ...any) {
	if h.log != nil {
		h.log.InfoContext(ctx, msg, args...)
	}
}

func (h *Harness) logWarn(ctx context.Context, msg string, args ...any) {
	if h.log != nil {
		h.log.WarnContext(ctx, msg, args...)
	}
}

// Execute runs the whole plan sequentially — timed runs must not overlap —
// and never aborts the campaign for a single run's failure. ctx cancels the
// campaign between runs, and (combined with the per-run timeout) inside
// them. The outcomes collected so far are returned alongside ctx.Err().
func (h *Harness) Execute(ctx context.Context, plan []Spec) ([]Outcome, error) {
	outs := make([]Outcome, 0, len(plan))
	for _, s := range plan {
		if err := ctx.Err(); err != nil {
			return outs, err
		}
		outs = append(outs, h.RunOne(ctx, s))
	}
	return outs, nil
}

// matrixFor loads (or returns the cached) matrix of a spec.
func (h *Harness) matrixFor(s Spec) (*matrix.COO[float64], error) {
	if m, ok := h.matrices[s.Matrix]; ok {
		return m, nil
	}
	if s.Load == nil {
		return nil, fmt.Errorf("harness: spec %s/%s has no matrix loader", s.Kernel, s.Matrix)
	}
	m, err := s.Load()
	if err != nil {
		return nil, err
	}
	h.matrices[s.Matrix] = m
	return m, nil
}

// RunOne executes a single spec with the full recovery pipeline: resume
// skip, budget degradation, panic containment, timeout, retry with
// backoff, journaling and counting.
func (h *Harness) RunOne(ctx context.Context, s Spec) Outcome {
	m, err := h.matrixFor(s)
	if err != nil {
		out := Outcome{Spec: s, Status: StatusFailed, RanKernel: s.Kernel, Attempts: 1,
			Err: &RunError{RunID: s.Kernel + "|" + s.Matrix, Class: ClassFatal, Attempt: 1, Err: err}}
		h.record(out)
		return out
	}
	return h.runLoaded(ctx, s, m)
}

// runLoaded is RunOne past the matrix-loading step.
func (h *Harness) runLoaded(ctx context.Context, s Spec, m *matrix.COO[float64]) Outcome {
	id := s.id(m)
	if s.Params.Trace == nil {
		s.Params.Trace = h.cfg.Trace
	}
	ctx = obs.WithLogAttrs(ctx,
		slog.String("kernel", s.Kernel), slog.String("matrix", s.Matrix))

	if rec, ok := h.done[id]; ok {
		h.counters.Add("skipped", 1)
		countOutcome(StatusSkipped)
		h.cfg.Trace.Instant(0, trace.PhaseSkip, id, 0)
		h.logInfo(ctx, "skip: already journaled", "run", id, "status", rec.Status)
		out := Outcome{Spec: s, ID: id, Status: StatusSkipped, RanKernel: rec.Kernel}
		if rec.Substituted != "" {
			out.RanKernel = rec.Substituted
		}
		if rec.Result != nil {
			out.Result = *rec.Result
		}
		return out
	}

	kernelName, degraded, budgetErr := h.applyBudget(s, m)
	if budgetErr != nil {
		out := Outcome{Spec: s, ID: id, Status: StatusFailed, RanKernel: s.Kernel, Attempts: 1,
			Err: &RunError{RunID: id, Class: ClassOverBudget, Attempt: 1, Err: budgetErr}}
		h.record(out)
		return out
	}

	maxAttempts := 1 + max(0, h.cfg.Retries)
	var lastErr error
	attempts := 0
	for attempts < maxAttempts {
		attempts++
		k, err := core.New(kernelName, s.Opts)
		if err != nil {
			lastErr = err
			break
		}
		// Simulated kernels are deterministic: a failure cannot be
		// transient, so retrying only burns host time (see DESIGN.md).
		_, isModel := k.(core.ModelTimed)
		k = h.cfg.Injector.Wrap(id, k)

		span := h.cfg.Trace.Start()
		res, err := h.safeRun(ctx, k, m, s.Matrix, s.Params)
		h.cfg.Trace.EndDetail(0, trace.PhaseAttempt, id, span, int64(attempts))
		if err == nil {
			status := StatusOK
			if degraded {
				status = StatusDegraded
			}
			out := Outcome{Spec: s, ID: id, Status: status, RanKernel: kernelName,
				Result: res, Attempts: attempts}
			h.record(out)
			return out
		}
		lastErr = err
		class := Classify(err)
		h.logWarn(ctx, "attempt failed", "run", id,
			"attempt", attempts, "max", maxAttempts, "class", class.String(), "err", err)
		if !class.Retryable() || isModel || attempts >= maxAttempts {
			break
		}
		if attempts == 1 {
			h.counters.Add("retried", 1)
		}
		obsRetries.Inc()
		h.cfg.Trace.Instant(0, trace.PhaseRetry, class.String(), int64(attempts))
		delay := h.cfg.Backoff.Delay(attempts, h.rng)
		obsBackoffSeconds.Observe(delay.Seconds())
		span = h.cfg.Trace.Start()
		h.sleep(delay)
		h.cfg.Trace.End(0, trace.PhaseBackoff, span, int64(attempts))
	}

	out := Outcome{Spec: s, ID: id, Status: StatusFailed, RanKernel: kernelName,
		Attempts: attempts, Err: h.asRunError(id, attempts, lastErr)}
	h.record(out)
	return out
}

// applyBudget walks the degradation chain until the estimated footprint
// fits. It returns the kernel to run, whether a substitution happened, and
// an error when even COO would not fit.
func (h *Harness) applyBudget(s Spec, m *matrix.COO[float64]) (string, bool, error) {
	kernelName := s.Kernel
	if h.cfg.MemBudget <= 0 {
		return kernelName, false, nil
	}
	props := metrics.Compute(m)
	format := FormatOf(kernelName)
	degraded := false
	for {
		est := EstimateBytes(format, props, s.Params.BlockSize)
		if est <= h.cfg.MemBudget {
			break
		}
		fb, ok := Fallback(format)
		if !ok {
			return kernelName, degraded, fmt.Errorf("%w: %s on %s needs ~%s, budget %s, no fallback left",
				ErrOverBudget, format, s.Matrix, FormatBytesHuman(est), FormatBytesHuman(h.cfg.MemBudget))
		}
		next := fallbackKernel(kernelName, format, fb)
		obsDegrades.Inc()
		h.cfg.Trace.Instant(0, trace.PhaseDegrade, format+"->"+fb, 0)
		h.logInfo(context.Background(), "degrade: format over budget",
			"kernel", s.Kernel, "matrix", s.Matrix, "format", format,
			"estimate", FormatBytesHuman(est),
			"budget", FormatBytesHuman(h.cfg.MemBudget), "fallback", next)
		kernelName, format, degraded = next, fb, true
	}
	return kernelName, degraded, nil
}

// safeRun executes one attempt with panic containment and the per-attempt
// timeout. The benchmark runs in its own goroutine; on deadline the harness
// waits a short grace period for the cooperative cancellation checks to
// fire, then abandons the goroutine (it parks on a buffered channel and
// exits on its own once the kernel returns).
func (h *Harness) safeRun(ctx context.Context, k core.Kernel, m *matrix.COO[float64],
	matrixName string, p core.Params) (core.Result, error) {
	runCtx := ctx
	if h.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, h.cfg.Timeout)
		defer cancel()
	}

	type reply struct {
		res core.Result
		err error
	}
	ch := make(chan reply, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- reply{err: &RunError{Class: ClassPanic, Stack: debug.Stack(),
					Err: fmt.Errorf("%v", r)}}
			}
		}()
		res, err := core.RunCtx(runCtx, k, m, matrixName, p)
		ch <- reply{res, err}
	}()

	select {
	case r := <-ch:
		return r.res, r.err
	case <-runCtx.Done():
		grace := time.NewTimer(250 * time.Millisecond)
		defer grace.Stop()
		select {
		case r := <-ch:
			return r.res, r.err
		case <-grace.C:
			h.logWarn(ctx, "abandoning unresponsive run",
				"kernel", k.Name(), "matrix", matrixName, "timeout", h.cfg.Timeout)
			return core.Result{}, &RunError{Class: ClassTimeout, Err: runCtx.Err()}
		}
	}
}

// asRunError normalises a final failure into a *RunError carrying the run
// identity and attempt count.
func (h *Harness) asRunError(id string, attempts int, err error) *RunError {
	var re *RunError
	if errors.As(err, &re) {
		re.RunID = id
		re.Attempt = attempts
		return re
	}
	return &RunError{RunID: id, Class: Classify(err), Attempt: attempts, Err: err}
}

// record journals and counts a terminal outcome.
func (h *Harness) record(out Outcome) {
	// The status counters partition terminal outcomes; "retried" is an
	// orthogonal tally kept by the retry loop.
	switch out.Status {
	case StatusFailed:
		h.counters.Add("failed", 1)
	case StatusDegraded:
		h.counters.Add("degraded", 1)
	default:
		h.counters.Add("ok", 1)
	}
	countOutcome(out.Status)
	if h.journal == nil {
		return
	}
	rec := Record{
		ID:       out.ID,
		Status:   out.Status,
		Kernel:   out.Spec.Kernel,
		Matrix:   out.Spec.Matrix,
		Attempts: out.Attempts,
	}
	if out.RanKernel != out.Spec.Kernel {
		rec.Substituted = out.RanKernel
	}
	if out.Err != nil {
		rec.Error = out.Err.Error()
		rec.Class = Classify(out.Err).String()
	} else {
		res := out.Result
		rec.Result = &res
	}
	if err := h.journal.Append(rec); err != nil {
		h.logWarn(context.Background(), "journal append failed", "err", err)
		return
	}
	lastAppend.Store(time.Now().UnixNano())
}

// Runner returns a drop-in replacement for core.Run for callers that drive
// their own matrix/kernel loop (spmmstudy). Containment, timeout, retry,
// budget degradation and journal replay all apply; unlike Execute, a failed
// run still returns its error, so the caller's own error handling keeps
// working — but a panic arrives as a typed error instead of crashing the
// process, and resumed runs replay instantly from the journal.
func (h *Harness) Runner() func(kernelName string, opts core.Options, m *matrix.COO[float64],
	matrixName string, p core.Params) (core.Result, error) {
	return func(kernelName string, opts core.Options, m *matrix.COO[float64],
		matrixName string, p core.Params) (core.Result, error) {
		// The matrix arrives pre-loaded, so the per-name cache is
		// bypassed: the same name at different scales must not alias.
		out := h.runLoaded(context.Background(), Spec{
			Kernel: kernelName,
			Matrix: matrixName,
			Opts:   opts,
			Params: p,
		}, m)
		if out.Err != nil {
			return out.Result, out.Err
		}
		return out.Result, nil
	}
}
