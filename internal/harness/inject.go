package harness

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
)

// FaultPoint locates where in a run's lifecycle an injected fault fires.
type FaultPoint uint8

const (
	// PointPrepare fires at the top of Kernel.Prepare.
	PointPrepare FaultPoint = iota
	// PointCalculate fires at the top of every Kernel.Calculate call
	// (warm-up and timed repetitions alike).
	PointCalculate
)

func (p FaultPoint) String() string {
	if p == PointPrepare {
		return "prepare"
	}
	return "calculate"
}

// FaultKind selects what an armed fault does when it fires.
type FaultKind uint8

const (
	// FaultPanic panics, exercising the harness's panic containment.
	FaultPanic FaultKind = iota
	// FaultTransient returns an error wrapping ErrTransient, exercising
	// retry with backoff.
	FaultTransient
	// FaultSlow sleeps for Delay (± seeded jitter) before proceeding,
	// exercising the per-run timeout.
	FaultSlow
)

func (k FaultKind) String() string {
	switch k {
	case FaultPanic:
		return "panic"
	case FaultTransient:
		return "transient"
	default:
		return "slow"
	}
}

// Fault arms Count firings of Kind at Point for runs whose ID contains Run
// as a substring (run IDs start with "kernel|matrix|", so matching on
// either is natural). An empty Run matches every run; Count <= 0 means 1.
type Fault struct {
	Run   string
	Point FaultPoint
	Kind  FaultKind
	Count int
	// Delay is the FaultSlow sleep.
	Delay time.Duration
}

type armedFault struct {
	Fault
	remaining int
}

// Injector deterministically injects faults into the kernels a campaign
// builds. The same seed and fault list always produce the same failure
// sequence, which is what lets the harness tests prove each recovery path.
// A nil *Injector disables injection entirely (the production setting).
type Injector struct {
	mu     sync.Mutex
	faults []*armedFault
	rng    *rand.Rand
}

// NewInjector arms the given faults. seed drives the jitter applied to
// FaultSlow delays.
func NewInjector(seed int64, faults ...Fault) *Injector {
	in := &Injector{rng: rand.New(rand.NewSource(seed))}
	for _, f := range faults {
		n := f.Count
		if n <= 0 {
			n = 1
		}
		in.faults = append(in.faults, &armedFault{Fault: f, remaining: n})
	}
	return in
}

// Wrap interposes the injector between the harness and a kernel. A nil
// injector returns the kernel unchanged. Kernels implementing
// core.ModelTimed keep that capability through the wrapper, so the runner's
// simulated-time handling is unaffected.
func (in *Injector) Wrap(runID string, k core.Kernel) core.Kernel {
	if in == nil {
		return k
	}
	fk := &faultKernel{Kernel: k, in: in, runID: runID}
	if mt, ok := k.(core.ModelTimed); ok {
		return &faultModelKernel{faultKernel: fk, mt: mt}
	}
	return fk
}

// fire performs at most one armed fault matching (runID, point). It either
// returns a transient error, panics, or sleeps — or does nothing when no
// fault matches.
func (in *Injector) fire(runID string, point FaultPoint) error {
	in.mu.Lock()
	var hit *armedFault
	for _, f := range in.faults {
		if f.remaining > 0 && f.Point == point &&
			(f.Run == "" || strings.Contains(runID, f.Run)) {
			f.remaining--
			hit = f
			break
		}
	}
	var delay time.Duration
	if hit != nil && hit.Kind == FaultSlow {
		// ±10% seeded jitter keeps slow runs deterministic per seed while
		// still varying between firings.
		delay = hit.Delay + time.Duration(float64(hit.Delay)*0.1*(2*in.rng.Float64()-1))
	}
	in.mu.Unlock()

	if hit == nil {
		return nil
	}
	switch hit.Kind {
	case FaultPanic:
		panic(fmt.Sprintf("harness: injected panic at %s of %s", point, runID))
	case FaultTransient:
		return fmt.Errorf("%w: injected at %s of %s", ErrTransient, point, runID)
	default:
		time.Sleep(delay)
		return nil
	}
}

// faultKernel routes Prepare and Calculate through the injector first.
type faultKernel struct {
	core.Kernel
	in    *Injector
	runID string
}

func (f *faultKernel) Prepare(a *matrix.COO[float64], p core.Params) error {
	if err := f.in.fire(f.runID, PointPrepare); err != nil {
		return err
	}
	return f.Kernel.Prepare(a, p)
}

func (f *faultKernel) Calculate(b, c *matrix.Dense[float64], p core.Params) error {
	if err := f.in.fire(f.runID, PointCalculate); err != nil {
		return err
	}
	return f.Kernel.Calculate(b, c, p)
}

// faultModelKernel additionally forwards ModelTimed.
type faultModelKernel struct {
	*faultKernel
	mt core.ModelTimed
}

func (f *faultModelKernel) ModelSeconds() float64 { return f.mt.ModelSeconds() }
