package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
)

// FaultPoint locates where in a run's lifecycle an injected fault fires.
type FaultPoint uint8

const (
	// PointPrepare fires at the top of Kernel.Prepare.
	PointPrepare FaultPoint = iota
	// PointCalculate fires at the top of every Kernel.Calculate call
	// (warm-up and timed repetitions alike).
	PointCalculate
	// PointWALAppend fires before a durability write-ahead-log record is
	// written (serve's registry WAL and any other JSONL append path).
	PointWALAppend
	// PointWALSync fires before the WAL file is fsynced — the window where
	// a disk that lies about durability would lose an acked record.
	PointWALSync
	// PointSnapshot fires during a snapshot body write, before the
	// temp-file rename that publishes it.
	PointSnapshot
)

func (p FaultPoint) String() string {
	switch p {
	case PointPrepare:
		return "prepare"
	case PointCalculate:
		return "calculate"
	case PointWALAppend:
		return "wal-append"
	case PointWALSync:
		return "wal-sync"
	case PointSnapshot:
		return "snapshot"
	}
	return "unknown"
}

// FaultKind selects what an armed fault does when it fires.
type FaultKind uint8

const (
	// FaultPanic panics, exercising the harness's panic containment.
	FaultPanic FaultKind = iota
	// FaultTransient returns an error wrapping ErrTransient, exercising
	// retry with backoff.
	FaultTransient
	// FaultSlow sleeps for Delay (± seeded jitter) before proceeding,
	// exercising the per-run timeout.
	FaultSlow
	// FaultErr returns the fault's Err (a generic injected I/O error when
	// nil) — the disk-full / fsync-failure simulation for durability
	// paths.
	FaultErr
	// FaultTorn returns an error wrapping ErrTornWrite; the write site is
	// expected to persist only a prefix of the record before failing,
	// simulating a crash mid-write.
	FaultTorn
)

func (k FaultKind) String() string {
	switch k {
	case FaultPanic:
		return "panic"
	case FaultTransient:
		return "transient"
	case FaultErr:
		return "err"
	case FaultTorn:
		return "torn"
	default:
		return "slow"
	}
}

// ErrTornWrite marks an injected torn write: the fault site persisted only a
// prefix of the record, as a crash mid-write would.
var ErrTornWrite = errors.New("harness: injected torn write")

// Fault arms Count firings of Kind at Point for runs whose ID contains Run
// as a substring (run IDs start with "kernel|matrix|", so matching on
// either is natural). An empty Run matches every run; Count <= 0 means 1.
type Fault struct {
	Run   string
	Point FaultPoint
	Kind  FaultKind
	Count int
	// Delay is the FaultSlow sleep.
	Delay time.Duration
	// Err is the error FaultErr returns; nil means a generic injected
	// I/O error.
	Err error
}

type armedFault struct {
	Fault
	remaining int
}

// Injector deterministically injects faults into the kernels a campaign
// builds. The same seed and fault list always produce the same failure
// sequence, which is what lets the harness tests prove each recovery path.
// A nil *Injector disables injection entirely (the production setting).
type Injector struct {
	mu     sync.Mutex
	faults []*armedFault
	rng    *rand.Rand
}

// NewInjector arms the given faults. seed drives the jitter applied to
// FaultSlow delays.
func NewInjector(seed int64, faults ...Fault) *Injector {
	in := &Injector{rng: rand.New(rand.NewSource(seed))}
	for _, f := range faults {
		n := f.Count
		if n <= 0 {
			n = 1
		}
		in.faults = append(in.faults, &armedFault{Fault: f, remaining: n})
	}
	return in
}

// Arm adds faults to a live injector. Tests use it to let a run's setup
// (registration, warm-up) pass cleanly and then arm a fault for the one
// operation under test — e.g. the WAL append of a mutation batch or a
// compaction record, which shares its fault point with every earlier
// append.
func (in *Injector) Arm(faults ...Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, f := range faults {
		n := f.Count
		if n <= 0 {
			n = 1
		}
		in.faults = append(in.faults, &armedFault{Fault: f, remaining: n})
	}
}

// Wrap interposes the injector between the harness and a kernel. A nil
// injector returns the kernel unchanged. Kernels implementing
// core.ModelTimed keep that capability through the wrapper, so the runner's
// simulated-time handling is unaffected.
func (in *Injector) Wrap(runID string, k core.Kernel) core.Kernel {
	if in == nil {
		return k
	}
	fk := &faultKernel{Kernel: k, in: in, runID: runID}
	if mt, ok := k.(core.ModelTimed); ok {
		return &faultModelKernel{faultKernel: fk, mt: mt}
	}
	return fk
}

// Fire performs at most one armed fault matching (id, point) and returns
// the injected error, if any. Kernel faults are wired automatically through
// Wrap; non-kernel fault sites (the serve WAL and snapshot writers) call
// Fire directly at their durability points. A nil *Injector never fires.
func (in *Injector) Fire(id string, point FaultPoint) error {
	if in == nil {
		return nil
	}
	return in.fire(id, point)
}

// fire performs at most one armed fault matching (runID, point). It either
// returns a transient error, panics, or sleeps — or does nothing when no
// fault matches.
func (in *Injector) fire(runID string, point FaultPoint) error {
	in.mu.Lock()
	var hit *armedFault
	for _, f := range in.faults {
		if f.remaining > 0 && f.Point == point &&
			(f.Run == "" || strings.Contains(runID, f.Run)) {
			f.remaining--
			hit = f
			break
		}
	}
	var delay time.Duration
	if hit != nil && hit.Kind == FaultSlow {
		// ±10% seeded jitter keeps slow runs deterministic per seed while
		// still varying between firings.
		delay = hit.Delay + time.Duration(float64(hit.Delay)*0.1*(2*in.rng.Float64()-1))
	}
	in.mu.Unlock()

	if hit == nil {
		return nil
	}
	switch hit.Kind {
	case FaultPanic:
		panic(fmt.Sprintf("harness: injected panic at %s of %s", point, runID))
	case FaultTransient:
		return fmt.Errorf("%w: injected at %s of %s", ErrTransient, point, runID)
	case FaultErr:
		if hit.Err != nil {
			return fmt.Errorf("injected at %s of %s: %w", point, runID, hit.Err)
		}
		return fmt.Errorf("harness: injected i/o error at %s of %s", point, runID)
	case FaultTorn:
		return fmt.Errorf("%w: at %s of %s", ErrTornWrite, point, runID)
	default:
		time.Sleep(delay)
		return nil
	}
}

// faultKernel routes Prepare and Calculate through the injector first.
type faultKernel struct {
	core.Kernel
	in    *Injector
	runID string
}

func (f *faultKernel) Prepare(a *matrix.COO[float64], p core.Params) error {
	if err := f.in.fire(f.runID, PointPrepare); err != nil {
		return err
	}
	return f.Kernel.Prepare(a, p)
}

func (f *faultKernel) Calculate(b, c *matrix.Dense[float64], p core.Params) error {
	if err := f.in.fire(f.runID, PointCalculate); err != nil {
		return err
	}
	return f.Kernel.Calculate(b, c, p)
}

// faultModelKernel additionally forwards ModelTimed.
type faultModelKernel struct {
	*faultKernel
	mt core.ModelTimed
}

func (f *faultModelKernel) ModelSeconds() float64 { return f.mt.ModelSeconds() }
