package harness

import (
	"math"
	"math/rand"
	"time"
)

// Backoff computes retry delays: exponential growth from Base by Factor,
// capped at Max, with a symmetric ±Jitter fraction of seed-driven noise so
// concurrent campaigns retrying against a shared resource do not stampede
// in lockstep. The zero value is replaced by DefaultBackoff.
type Backoff struct {
	// Base is the delay before the first retry.
	Base time.Duration
	// Max caps the grown delay (before jitter).
	Max time.Duration
	// Factor multiplies the delay per retry; values < 1 are treated as 2.
	Factor float64
	// Jitter is the fraction of the delay randomised in [-J, +J]; values
	// outside [0, 1) disable jitter.
	Jitter float64
}

// DefaultBackoff is the campaign default: 100ms doubling to a 10s cap with
// ±20% jitter.
func DefaultBackoff() Backoff {
	return Backoff{Base: 100 * time.Millisecond, Max: 10 * time.Second, Factor: 2, Jitter: 0.2}
}

// isZero reports whether b is the zero value (meaning "use the default").
func (b Backoff) isZero() bool {
	return b.Base == 0 && b.Max == 0 && b.Factor == 0 && b.Jitter == 0
}

// Delay returns the pause before retry `attempt` (1-based: the delay after
// the first failed attempt is Delay(1)). rng supplies deterministic jitter;
// nil disables jitter.
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	if b.isZero() {
		b = DefaultBackoff()
	}
	if attempt < 1 {
		attempt = 1
	}
	factor := b.Factor
	if factor < 1 {
		factor = 2
	}
	d := float64(b.Base) * math.Pow(factor, float64(attempt-1))
	if b.Max > 0 && d > float64(b.Max) {
		d = float64(b.Max)
	}
	if rng != nil && b.Jitter > 0 && b.Jitter < 1 {
		d *= 1 + b.Jitter*(2*rng.Float64()-1)
	}
	return time.Duration(d)
}
