package harness

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{fmt.Errorf("wrapped: %w", ErrTransient), ClassTransient},
		{context.DeadlineExceeded, ClassTimeout},
		{fmt.Errorf("core: rep 2: %w", context.Canceled), ClassTimeout},
		{fmt.Errorf("verify: %w", core.ErrVerify), ClassVerifyFailed},
		{errors.New("some other failure"), ClassFatal},
		{&RunError{Class: ClassPanic, Err: errors.New("boom")}, ClassPanic},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %s, want %s", c.err, got, c.want)
		}
	}
	for cl, retryable := range map[Class]bool{
		ClassTransient: true, ClassFatal: false, ClassPanic: false,
		ClassTimeout: false, ClassVerifyFailed: false, ClassOverBudget: false,
	} {
		if cl.Retryable() != retryable {
			t.Errorf("%s.Retryable() = %v", cl, cl.Retryable())
		}
	}
}

func TestRunErrorUnwrapsBothWays(t *testing.T) {
	cause := errors.New("socket reset")
	err := error(&RunError{RunID: "id", Class: ClassTransient, Attempt: 2,
		Err: fmt.Errorf("attempt: %w", cause)})
	if !errors.Is(err, ErrTransient) {
		t.Fatal("RunError does not match its class sentinel")
	}
	if !errors.Is(err, cause) {
		t.Fatal("RunError does not match its cause")
	}
	if msg := err.Error(); msg == "" {
		t.Fatal("empty message")
	}
}

func TestBackoffGrowthCapAndJitter(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.2}
	rng := rand.New(rand.NewSource(1))
	prev := time.Duration(0)
	for attempt := 1; attempt <= 8; attempt++ {
		d := b.Delay(attempt, rng)
		// Nominal delay: base * factor^(attempt-1), capped at Max, then
		// jittered by ±20%.
		nominal := 100 * time.Millisecond
		for i := 1; i < attempt; i++ {
			nominal *= 2
			if nominal > time.Second {
				nominal = time.Second
				break
			}
		}
		lo := time.Duration(float64(nominal) * 0.8)
		hi := time.Duration(float64(nominal) * 1.2)
		if d < lo || d > hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, lo, hi)
		}
		if attempt <= 4 && d <= prev {
			t.Fatalf("attempt %d: delay %v did not grow past %v", attempt, d, prev)
		}
		prev = d
	}
	// Same seed, same sequence.
	a1, a2 := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	for i := 1; i < 5; i++ {
		if b.Delay(i, a1) != b.Delay(i, a2) {
			t.Fatal("backoff is not deterministic per seed")
		}
	}
}

func TestBackoffZeroValueDefaults(t *testing.T) {
	var b Backoff
	d := b.Delay(1, rand.New(rand.NewSource(1)))
	def := DefaultBackoff()
	lo := time.Duration(float64(def.Base) * (1 - def.Jitter))
	hi := time.Duration(float64(def.Base) * (1 + def.Jitter))
	if d < lo || d > hi {
		t.Fatalf("zero-value first delay %v outside default range [%v, %v]", d, lo, hi)
	}
}

func TestEstimateBytesELLBlowUp(t *testing.T) {
	// One 300-entry row in a 400-row matrix: ELL pads every row to 300.
	pr := metrics.Properties{Rows: 400, Cols: 400, NNZ: 700, MaxRow: 300}
	ell := EstimateBytes("ell", pr, 4)
	csr := EstimateBytes("csr", pr, 4)
	coo := EstimateBytes("coo", pr, 4)
	if ell != int64(400)*300*12 {
		t.Fatalf("ell estimate %d", ell)
	}
	if csr >= ell || coo >= ell {
		t.Fatalf("padding blow-up not reflected: ell %d csr %d coo %d", ell, csr, coo)
	}
	if coo != 700*16 {
		t.Fatalf("coo estimate %d", coo)
	}
}

func TestFallbackChain(t *testing.T) {
	steps := []string{}
	format := "ell"
	for {
		fb, ok := Fallback(format)
		if !ok {
			break
		}
		steps = append(steps, fb)
		format = fb
	}
	if len(steps) != 2 || steps[0] != "csr" || steps[1] != "coo" {
		t.Fatalf("ell fallback chain %v, want [csr coo]", steps)
	}
	if _, ok := Fallback("coo"); ok {
		t.Fatal("coo must be the end of the chain")
	}
}

func TestFallbackKernelRewriting(t *testing.T) {
	cases := []struct{ in, from, to, want string }{
		{"ell-serial", "ell", "csr", "csr-serial"},
		{"bcsr-omp", "bcsr", "csr", "csr-omp"},
		{"csr-omp-t", "csr", "coo", "coo-omp-t"},
		// Vendor kernels degrade to the baseline (non-vendor) fallback.
		{"vendor-csr-gpu", "csr", "coo", "coo-gpu"},
	}
	for _, c := range cases {
		if got := fallbackKernel(c.in, c.from, c.to); got != c.want {
			t.Errorf("fallbackKernel(%q, %s->%s) = %q, want %q", c.in, c.from, c.to, got, c.want)
		}
	}
	if got := FormatOf("vendor-csr-gpu"); got != "csr" {
		t.Errorf("FormatOf(vendor-csr-gpu) = %q", got)
	}
	if got := FormatOf("sellcs-omp"); got != "sellcs" {
		t.Errorf("FormatOf(sellcs-omp) = %q", got)
	}
}

func TestParseBytes(t *testing.T) {
	good := map[string]int64{
		"512":    512,
		"64KiB":  64 << 10,
		"64kb":   64 << 10,
		"2MiB":   2 << 20,
		"1GiB":   1 << 30,
		"1.5GiB": 3 << 29,
		"100b":   100,
	}
	for in, want := range good {
		got, err := ParseBytes(in)
		if err != nil || got != want {
			t.Errorf("ParseBytes(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "abc", "-5MiB", "5TiB"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q) accepted", bad)
		}
	}
}
