package harness

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/matrix"
)

func testDevice(t *testing.T) *gpusim.Device {
	t.Helper()
	dev, err := gpusim.NewDevice(gpusim.TestDevice(1 << 30))
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// diagMatrix builds an n×n matrix with a unit diagonal.
func diagMatrix(n int) *matrix.COO[float64] {
	m := matrix.NewCOO[float64](n, n, n)
	for i := 0; i < n; i++ {
		m.Append(int32(i), int32(i), 1)
	}
	return m
}

// skewMatrix builds a matrix with one long row — the ELLPACK blow-up case:
// row 0 holds `long` entries, every other row just its diagonal.
func skewMatrix(rows, long int) *matrix.COO[float64] {
	m := matrix.NewCOO[float64](rows, rows, rows+long)
	for j := 0; j < long; j++ {
		m.Append(0, int32(j%rows), 1)
	}
	for i := 1; i < rows; i++ {
		m.Append(int32(i), int32(i), 1)
	}
	m.SortRowMajor()
	m.Dedup()
	return m
}

func load(m *matrix.COO[float64]) func() (*matrix.COO[float64], error) {
	return func() (*matrix.COO[float64], error) { return m, nil }
}

func testParams() core.Params {
	return core.Params{Reps: 1, Threads: 1, BlockSize: 4, K: 8, Verify: true, Seed: 1}
}

func fastBackoff() Backoff {
	return Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond, Factor: 2, Jitter: 0.2}
}

// TestCampaignRecoversFromEveryFaultClass is the acceptance scenario: a
// campaign with one panicking kernel, one transient error that succeeds on
// retry, one over-budget ELL matrix, and one timeout completes end-to-end
// with each recovery path taken.
func TestCampaignRecoversFromEveryFaultClass(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	inject := NewInjector(7,
		Fault{Run: "csr-serial|panicky", Point: PointCalculate, Kind: FaultPanic},
		Fault{Run: "csr-serial|flaky", Point: PointPrepare, Kind: FaultTransient, Count: 1},
		Fault{Run: "coo-serial|slow", Point: PointCalculate, Kind: FaultSlow, Count: 10, Delay: 2 * time.Second},
	)
	cfg := Config{
		Timeout:   100 * time.Millisecond,
		Retries:   2,
		Backoff:   fastBackoff(),
		MemBudget: 64 << 10,
		Journal:   journal,
		Seed:      7,
		Injector:  inject,
	}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	plan := []Spec{
		{Kernel: "csr-serial", Matrix: "panicky", Load: load(diagMatrix(64)), Params: testParams()},
		{Kernel: "csr-serial", Matrix: "flaky", Load: load(diagMatrix(64)), Params: testParams()},
		{Kernel: "ell-serial", Matrix: "skewed", Load: load(skewMatrix(400, 300)), Params: testParams()},
		{Kernel: "coo-serial", Matrix: "slow", Load: load(diagMatrix(64)), Params: testParams()},
	}
	outs, err := h.Execute(context.Background(), plan)
	if err != nil {
		t.Fatalf("campaign aborted: %v", err)
	}
	if len(outs) != len(plan) {
		t.Fatalf("got %d outcomes, want %d", len(outs), len(plan))
	}

	// 1: the panic is contained as a typed failure with a stack.
	panicked := outs[0]
	if panicked.Status != StatusFailed {
		t.Fatalf("panicky run status %q", panicked.Status)
	}
	var re *RunError
	if !errors.As(panicked.Err, &re) || re.Class != ClassPanic {
		t.Fatalf("panicky run error %v", panicked.Err)
	}
	if !errors.Is(panicked.Err, ErrPanic) {
		t.Fatal("panic error does not match ErrPanic")
	}
	if len(re.Stack) == 0 {
		t.Fatal("panic error has no captured stack")
	}

	// 2: the transient failure succeeds on the second attempt.
	flaky := outs[1]
	if flaky.Status != StatusOK {
		t.Fatalf("flaky run status %q (%v)", flaky.Status, flaky.Err)
	}
	if flaky.Attempts != 2 {
		t.Fatalf("flaky run took %d attempts, want 2", flaky.Attempts)
	}

	// 3: the over-budget ELL run degrades to CSR and still completes.
	skewed := outs[2]
	if skewed.Status != StatusDegraded {
		t.Fatalf("skewed run status %q (%v)", skewed.Status, skewed.Err)
	}
	if skewed.RanKernel != "csr-serial" || skewed.Result.Kernel != "csr-serial" {
		t.Fatalf("skewed run degraded to %q", skewed.RanKernel)
	}
	if !skewed.Result.Verified {
		t.Fatal("degraded run skipped verification")
	}

	// 4: the slow run is recorded as a typed timeout.
	slow := outs[3]
	if slow.Status != StatusFailed || !errors.Is(slow.Err, ErrTimeout) {
		t.Fatalf("slow run status %q err %v", slow.Status, slow.Err)
	}

	c := h.Counters()
	for name, want := range map[string]int64{
		"ok": 1, "retried": 1, "degraded": 1, "skipped": 0, "failed": 2,
	} {
		if got := c.Get(name); got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}

	// The journal holds one terminal record per run.
	recs, err := ReadJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("journal has %d records, want 4", len(recs))
	}
	if recs[2].Substituted != "csr-serial" {
		t.Fatalf("journal did not record the substitution: %+v", recs[2])
	}
}

// TestCampaignResume kills a campaign midway and verifies the rerun with
// Resume replays the completed runs from the journal without re-executing
// any of them.
func TestCampaignResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	plan := []Spec{
		{Kernel: "csr-serial", Matrix: "a", Load: load(diagMatrix(32)), Params: testParams()},
		{Kernel: "coo-serial", Matrix: "b", Load: load(diagMatrix(48)), Params: testParams()},
		{Kernel: "ell-serial", Matrix: "c", Load: load(diagMatrix(64)), Params: testParams()},
	}

	// First campaign is interrupted after two runs.
	h1, err := New(Config{Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h1.Execute(context.Background(), plan[:2]); err != nil {
		t.Fatal(err)
	}
	if err := h1.Close(); err != nil {
		t.Fatal(err)
	}

	// The rerun replays the two journaled runs and executes only the third.
	// An injector armed to panic on the replayed runs proves they are never
	// re-executed.
	h2, err := New(Config{
		Journal: journal,
		Resume:  true,
		Injector: NewInjector(1,
			Fault{Run: "csr-serial|a", Point: PointPrepare, Kind: FaultPanic, Count: 99},
			Fault{Run: "coo-serial|b", Point: PointPrepare, Kind: FaultPanic, Count: 99},
		),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	outs, err := h2.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Status != StatusSkipped || outs[1].Status != StatusSkipped {
		t.Fatalf("resumed runs were not skipped: %q %q", outs[0].Status, outs[1].Status)
	}
	if outs[0].Result.MFLOPS <= 0 {
		t.Fatal("replayed run lost its journaled result")
	}
	if outs[2].Status != StatusOK {
		t.Fatalf("fresh run status %q (%v)", outs[2].Status, outs[2].Err)
	}
	if got := h2.Counters().Get("skipped"); got != 2 {
		t.Fatalf("skipped counter %d, want 2", got)
	}
}

// TestRetriesExhausted: a fault that stays transient longer than the retry
// budget ends as a failed run classified transient.
func TestRetriesExhausted(t *testing.T) {
	h, err := New(Config{
		Retries: 2,
		Backoff: fastBackoff(),
		Injector: NewInjector(1,
			Fault{Point: PointPrepare, Kind: FaultTransient, Count: 99}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	out := h.RunOne(context.Background(), Spec{
		Kernel: "csr-serial", Matrix: "m", Load: load(diagMatrix(16)), Params: testParams()})
	if out.Status != StatusFailed || out.Attempts != 3 {
		t.Fatalf("status %q attempts %d", out.Status, out.Attempts)
	}
	if !errors.Is(out.Err, ErrTransient) {
		t.Fatalf("error %v not transient", out.Err)
	}
}

// TestModelKernelsNeverRetry: a GPU (ModelTimed) kernel with a transient
// fault fails on the first attempt — simulated kernels are deterministic,
// so retrying would only burn host time.
func TestModelKernelsNeverRetry(t *testing.T) {
	dev := testDevice(t)
	h, err := New(Config{
		Retries: 3,
		Backoff: fastBackoff(),
		Injector: NewInjector(1,
			Fault{Point: PointCalculate, Kind: FaultTransient, Count: 99}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	p := testParams()
	p.Verify = false
	out := h.RunOne(context.Background(), Spec{
		Kernel: "csr-gpu", Matrix: "m", Load: load(diagMatrix(32)),
		Opts: core.Options{Device: dev}, Params: p})
	if out.Status != StatusFailed {
		t.Fatalf("status %q", out.Status)
	}
	if out.Attempts != 1 {
		t.Fatalf("model kernel was retried: %d attempts", out.Attempts)
	}
	if got := h.Counters().Get("retried"); got != 0 {
		t.Fatalf("retried counter %d, want 0", got)
	}
}

// TestVerifyFailureClassified: a kernel whose output disagrees with the COO
// reference fails with ClassVerifyFailed and is not retried.
func TestVerifyFailureClassified(t *testing.T) {
	if Classify(core.ErrVerify) != ClassVerifyFailed {
		t.Fatal("core.ErrVerify not classified as verify-failed")
	}
	if ClassVerifyFailed.Retryable() {
		t.Fatal("verify failures must not be retryable")
	}
}

// TestOverBudgetNoFallback: when even COO exceeds the budget, the run fails
// with ErrOverBudget instead of being attempted.
func TestOverBudgetNoFallback(t *testing.T) {
	h, err := New(Config{MemBudget: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	out := h.RunOne(context.Background(), Spec{
		Kernel: "coo-serial", Matrix: "m", Load: load(diagMatrix(64)), Params: testParams()})
	if out.Status != StatusFailed || !errors.Is(out.Err, ErrOverBudget) {
		t.Fatalf("status %q err %v", out.Status, out.Err)
	}
}

// TestRunnerAppliesContainment: the studies-facing Runner turns a panic
// into a typed error instead of crashing the caller.
func TestRunnerAppliesContainment(t *testing.T) {
	h, err := New(Config{
		Injector: NewInjector(1, Fault{Point: PointCalculate, Kind: FaultPanic})})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	run := h.Runner()
	_, err = run("csr-serial", core.Options{}, diagMatrix(32), "m", testParams())
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("runner error %v, want panic class", err)
	}
	// A second call without the (consumed) fault succeeds.
	res, err := run("csr-serial", core.Options{}, diagMatrix(32), "m", testParams())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("runner result not verified")
	}
}

// TestInjectorDeterministic: the same seed and fault list fire identically.
func TestInjectorDeterministic(t *testing.T) {
	in := NewInjector(42, Fault{Run: "x", Point: PointPrepare, Kind: FaultTransient, Count: 2})
	if err := in.fire("kernel|x|rest", PointPrepare); !errors.Is(err, ErrTransient) {
		t.Fatal("first firing missed")
	}
	if err := in.fire("kernel|x|rest", PointPrepare); !errors.Is(err, ErrTransient) {
		t.Fatal("second firing missed")
	}
	if err := in.fire("kernel|x|rest", PointPrepare); err != nil {
		t.Fatal("fault fired past its count")
	}
	if err := in.fire("other|run", PointPrepare); err != nil {
		t.Fatal("fault fired for a non-matching run")
	}
}

func TestJournalTornLastLineIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{ID: "a", Status: StatusOK}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn trailing line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"b","sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "a" {
		t.Fatalf("records %+v", recs)
	}
	// A malformed line in the middle, however, is an error.
	f, _ = os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString("\n{\"id\":\"c\",\"status\":\"ok\"}\n")
	f.Close()
	if _, err := ReadJournal(path); err == nil {
		t.Fatal("malformed middle line accepted")
	} else if !strings.Contains(err.Error(), "line") {
		t.Fatalf("error %v does not locate the line", err)
	}
}
