package harness

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log/slog"
	"os"
	"sync"

	"repro/internal/core"
)

// Outcome statuses, shared by journal records and campaign outcomes.
const (
	// StatusOK: the run completed (possibly after retries).
	StatusOK = "ok"
	// StatusDegraded: the run completed on a fallback format after the
	// memory-budget guard rejected the requested one.
	StatusDegraded = "degraded"
	// StatusFailed: all attempts failed; Class and Error say why.
	StatusFailed = "failed"
	// StatusSkipped: the run was already recorded in the journal and was
	// replayed, not re-executed (resume).
	StatusSkipped = "skipped"
)

// Record is one journal line — the durable outcome of one campaign run.
// The journal is append-only JSONL: one self-contained JSON object per
// line, so a crash can at worst tear the final line.
type Record struct {
	// ID is the campaign-unique run identity (kernel|matrix|dims|params).
	ID     string `json:"id"`
	Status string `json:"status"`
	Kernel string `json:"kernel"`
	Matrix string `json:"matrix"`
	// Substituted is the kernel actually run after degradation.
	Substituted string `json:"substituted,omitempty"`
	// Attempts is how many attempts were made (>1 means retries happened).
	Attempts int `json:"attempts"`
	// Class is the failure class for failed runs.
	Class string `json:"class,omitempty"`
	Error string `json:"error,omitempty"`
	// Result is the benchmark outcome for successful runs.
	Result *core.Result `json:"result,omitempty"`
}

// Journal appends campaign records to a JSONL file, flushing (and by
// default fsyncing) every record so an interrupted campaign loses at most
// the run in flight — and a killed process loses nothing it acked.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	sync bool
}

// JournalOpts tunes OpenJournalOpts.
type JournalOpts struct {
	// NoSync skips the per-append fsync. Appends then survive a process
	// crash (the kernel holds the write) but not a machine crash — the
	// opt-out for fsync-bound campaigns on slow disks.
	NoSync bool
	// Log receives a warning when a torn trailing record is repaired;
	// nil discards it.
	Log *slog.Logger
}

// OpenJournal opens (creating if needed) the journal at path for appending,
// with per-record fsync on.
func OpenJournal(path string) (*Journal, error) {
	return OpenJournalOpts(path, JournalOpts{})
}

// OpenJournalOpts opens the journal at path for appending. If the file ends
// in a torn record — a crash mid-append left bytes after the last newline —
// the partial record is truncated away (with a logged warning) so new
// appends never fuse onto a half-written line and later resumes see a clean
// JSONL stream.
func OpenJournalOpts(path string, opts JournalOpts) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: open journal: %w", err)
	}
	dropped, err := RepairTornTail(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("harness: journal %s: %w", path, err)
	}
	if dropped > 0 && opts.Log != nil {
		opts.Log.Warn("journal: dropped torn trailing record",
			"path", path, "bytes", dropped)
	}
	return &Journal{f: f, sync: !opts.NoSync}, nil
}

// RepairTornTail truncates a trailing partial line (no final newline) left
// by a crash mid-append, returning how many bytes were dropped. It is the
// shared open-for-append repair for every JSONL log in the suite (campaign
// journals here, the serve registry WAL).
func RepairTornTail(f *os.File) (dropped int64, err error) {
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, fmt.Errorf("seek: %w", err)
	}
	if size == 0 {
		return 0, nil
	}
	// Walk back from the end to the last newline. Torn records are bounded
	// by one Append, so reading back in small chunks terminates quickly.
	buf := make([]byte, 4096)
	keep := int64(0) // bytes to keep: offset just past the last '\n'
	for off := size; off > 0 && keep == 0; {
		n := int64(len(buf))
		if n > off {
			n = off
		}
		off -= n
		if _, err := f.ReadAt(buf[:n], off); err != nil {
			return 0, fmt.Errorf("read tail: %w", err)
		}
		for i := n - 1; i >= 0; i-- {
			if buf[i] == '\n' {
				keep = off + i + 1
				break
			}
		}
	}
	if keep == size {
		return 0, nil
	}
	if err := f.Truncate(keep); err != nil {
		return 0, fmt.Errorf("truncate torn tail: %w", err)
	}
	if _, err := f.Seek(keep, io.SeekStart); err != nil {
		return 0, fmt.Errorf("seek: %w", err)
	}
	return size - keep, nil
}

// Append writes one record as a single JSON line and, unless the journal
// was opened with NoSync, fsyncs it — the record is durable before Append
// returns.
func (j *Journal) Append(rec Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("harness: journal marshal: %w", err)
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("harness: journal write: %w", err)
	}
	if j.sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("harness: journal fsync: %w", err)
		}
	}
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// ReadJournal loads every complete record from path. A missing file is an
// empty journal (fresh campaign with -resume is fine). A torn final line —
// the crash case Append's per-record flush bounds us to — is ignored; a
// malformed line anywhere else is an error, since it means the file is not
// a journal.
func ReadJournal(path string) ([]Record, error) {
	recs, _, err := ReadJournalTorn(path)
	return recs, err
}

// ReadJournalTorn is ReadJournal, additionally reporting whether a torn
// (partial or malformed) final record was skipped — resume paths log it as
// a warning instead of failing the whole campaign.
func ReadJournalTorn(path string) (recs []Record, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("harness: read journal: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	var pendingErr error
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		// A malformed line is only tolerable if it turns out to be the
		// last one (torn by a crash mid-Append).
		if pendingErr != nil {
			return nil, false, pendingErr
		}
		var rec Record
		if err := json.Unmarshal(text, &rec); err != nil {
			pendingErr = fmt.Errorf("harness: journal %s line %d: %w", path, line, err)
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, false, fmt.Errorf("harness: read journal: %w", err)
	}
	return recs, pendingErr != nil, nil
}

// CompletedIDs indexes journal records by run ID. Every recorded terminal
// status counts as completed — a deterministic failure would only fail
// again on resume. Later records for the same ID win.
func CompletedIDs(recs []Record) map[string]Record {
	done := make(map[string]Record, len(recs))
	for _, r := range recs {
		switch r.Status {
		case StatusOK, StatusDegraded, StatusFailed:
			done[r.ID] = r
		}
	}
	return done
}
