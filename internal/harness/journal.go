package harness

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"

	"repro/internal/core"
)

// Outcome statuses, shared by journal records and campaign outcomes.
const (
	// StatusOK: the run completed (possibly after retries).
	StatusOK = "ok"
	// StatusDegraded: the run completed on a fallback format after the
	// memory-budget guard rejected the requested one.
	StatusDegraded = "degraded"
	// StatusFailed: all attempts failed; Class and Error say why.
	StatusFailed = "failed"
	// StatusSkipped: the run was already recorded in the journal and was
	// replayed, not re-executed (resume).
	StatusSkipped = "skipped"
)

// Record is one journal line — the durable outcome of one campaign run.
// The journal is append-only JSONL: one self-contained JSON object per
// line, so a crash can at worst tear the final line.
type Record struct {
	// ID is the campaign-unique run identity (kernel|matrix|dims|params).
	ID     string `json:"id"`
	Status string `json:"status"`
	Kernel string `json:"kernel"`
	Matrix string `json:"matrix"`
	// Substituted is the kernel actually run after degradation.
	Substituted string `json:"substituted,omitempty"`
	// Attempts is how many attempts were made (>1 means retries happened).
	Attempts int `json:"attempts"`
	// Class is the failure class for failed runs.
	Class string `json:"class,omitempty"`
	Error string `json:"error,omitempty"`
	// Result is the benchmark outcome for successful runs.
	Result *core.Result `json:"result,omitempty"`
}

// Journal appends campaign records to a JSONL file, flushing every record
// so an interrupted campaign loses at most the run in flight.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// OpenJournal opens (creating if needed) the journal at path for appending.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: open journal: %w", err)
	}
	return &Journal{f: f}, nil
}

// Append writes one record as a single JSON line.
func (j *Journal) Append(rec Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("harness: journal marshal: %w", err)
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("harness: journal write: %w", err)
	}
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// ReadJournal loads every complete record from path. A missing file is an
// empty journal (fresh campaign with -resume is fine). A torn final line —
// the crash case Append's per-record flush bounds us to — is ignored; a
// malformed line anywhere else is an error, since it means the file is not
// a journal.
func ReadJournal(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("harness: read journal: %w", err)
	}
	defer f.Close()

	var recs []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	var pendingErr error
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		// A malformed line is only tolerable if it turns out to be the
		// last one (torn by a crash mid-Append).
		if pendingErr != nil {
			return nil, pendingErr
		}
		var rec Record
		if err := json.Unmarshal(text, &rec); err != nil {
			pendingErr = fmt.Errorf("harness: journal %s line %d: %w", path, line, err)
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("harness: read journal: %w", err)
	}
	return recs, nil
}

// CompletedIDs indexes journal records by run ID. Every recorded terminal
// status counts as completed — a deterministic failure would only fail
// again on resume. Later records for the same ID win.
func CompletedIDs(recs []Record) map[string]Record {
	done := make(map[string]Record, len(recs))
	for _, r := range recs {
		switch r.Status {
		case StatusOK, StatusDegraded, StatusFailed:
			done[r.ID] = r
		}
	}
	return done
}
