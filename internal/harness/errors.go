// Package harness is the resilient campaign runner of the suite: it wraps
// core.Run so a full (matrix × kernel × params) benchmark plan survives
// individual failures. A panicking kernel becomes a typed *RunError with a
// captured stack, per-run timeouts cancel cooperative kernels via context,
// transient failures are retried with exponential backoff and jitter, a
// memory-budget guard degrades padding-heavy formats to CSR/COO before any
// memory is committed, and a JSONL journal makes interrupted campaigns
// resumable. A deterministic fault-injection layer exercises every one of
// those recovery paths in the package's own tests.
//
// The motivation is the thesis' own campaign shape — 14 SuiteSparse
// matrices × 4 formats × many kernel modes as long unattended runs — where
// one bad matrix or one over-sized ELLPACK expansion previously killed the
// whole sweep.
package harness

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
)

// Sentinel errors, one per failure class. Producers wrap them with %w (the
// fault injector marks transient failures with ErrTransient); consumers
// test with errors.Is.
var (
	ErrTransient    = errors.New("harness: transient failure")
	ErrOverBudget   = errors.New("harness: estimated footprint exceeds memory budget")
	ErrVerifyFailed = errors.New("harness: verification failed")
	ErrPanic        = errors.New("harness: kernel panicked")
	ErrTimeout      = errors.New("harness: run timed out")
)

// Class classifies a run failure for retry and reporting decisions.
type Class uint8

const (
	// ClassFatal is any non-retryable error outside the named classes
	// (bad kernel name, malformed matrix, shape mismatch, ...).
	ClassFatal Class = iota
	// ClassTransient failures may succeed on retry.
	ClassTransient
	// ClassOverBudget means the memory-budget guard rejected the format
	// and no fallback remained.
	ClassOverBudget
	// ClassVerifyFailed means the kernel ran but disagreed with the COO
	// reference — deterministic, never retried.
	ClassVerifyFailed
	// ClassPanic means the kernel panicked; the stack is on the RunError.
	ClassPanic
	// ClassTimeout means the per-run deadline expired (or the campaign
	// context was cancelled mid-run).
	ClassTimeout
)

func (c Class) String() string {
	switch c {
	case ClassTransient:
		return "transient"
	case ClassOverBudget:
		return "over-budget"
	case ClassVerifyFailed:
		return "verify-failed"
	case ClassPanic:
		return "panic"
	case ClassTimeout:
		return "timeout"
	default:
		return "fatal"
	}
}

// Retryable reports whether the harness may re-attempt a run that failed
// with this class. Only transient failures qualify: panics, verification
// mismatches and budget rejections are deterministic, and a timed-out run
// would time out again.
func (c Class) Retryable() bool { return c == ClassTransient }

// sentinel returns the class's sentinel error (nil for ClassFatal).
func (c Class) sentinel() error {
	switch c {
	case ClassTransient:
		return ErrTransient
	case ClassOverBudget:
		return ErrOverBudget
	case ClassVerifyFailed:
		return ErrVerifyFailed
	case ClassPanic:
		return ErrPanic
	case ClassTimeout:
		return ErrTimeout
	default:
		return nil
	}
}

// RunError is the typed failure a campaign records for one run. It wraps
// the underlying cause and the class sentinel, so both
// errors.Is(err, ErrPanic) and errors.Is(err, cause) hold.
type RunError struct {
	// RunID identifies the run within the campaign (see Spec).
	RunID string
	// Class is the failure classification.
	Class Class
	// Attempt is the 1-based attempt that produced the final error.
	Attempt int
	// Stack is the captured goroutine stack for panics, nil otherwise.
	Stack []byte
	// Err is the underlying cause.
	Err error
}

func (e *RunError) Error() string {
	msg := fmt.Sprintf("harness: run %s: attempt %d: %s", e.RunID, e.Attempt, e.Class)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the class sentinel and the underlying cause.
func (e *RunError) Unwrap() []error {
	errs := make([]error, 0, 2)
	if s := e.Class.sentinel(); s != nil {
		errs = append(errs, s)
	}
	if e.Err != nil {
		errs = append(errs, e.Err)
	}
	return errs
}

// Classify maps an arbitrary run error onto the failure taxonomy. A
// *RunError keeps its recorded class; everything else is matched against
// the sentinels, the context errors, and core.ErrVerify.
func Classify(err error) Class {
	var re *RunError
	switch {
	case errors.As(err, &re):
		return re.Class
	case errors.Is(err, ErrTransient):
		return ClassTransient
	case errors.Is(err, ErrTimeout),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return ClassTimeout
	case errors.Is(err, core.ErrVerify), errors.Is(err, ErrVerifyFailed):
		return ClassVerifyFailed
	case errors.Is(err, ErrOverBudget):
		return ClassOverBudget
	case errors.Is(err, ErrPanic):
		return ClassPanic
	default:
		return ClassFatal
	}
}
