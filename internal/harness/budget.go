package harness

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// EstimateBytes predicts the formatted footprint of `format` from the
// matrix's row-length statistics alone — before any memory is committed.
// The padded formats are where the guard matters: ELLPACK stores
// rows × MaxRow slots, so a single long row (torso1's column ratio is 44)
// multiplies the footprint by orders of magnitude; blocked formats are
// bounded by the worst case of one block per nonzero. Estimates are
// deliberately pessimistic upper bounds: the guard must never under-predict
// and then die in Prepare.
func EstimateBytes(format string, pr metrics.Properties, block int) int64 {
	const valBytes, idxBytes = 8, 4 // float64 values, int32 indices
	rows, cols, nnz := int64(pr.Rows), int64(pr.Cols), int64(pr.NNZ)
	switch format {
	case "coo":
		return nnz * (valBytes + 2*idxBytes)
	case "csr", "csc":
		return nnz*(valBytes+idxBytes) + (rows+1)*idxBytes
	case "ell", "sellcs":
		// SELL-C-σ pads each slice to its own maximum, which ELL's
		// rows × MaxRow bounds from above.
		return rows * int64(pr.MaxRow) * (valBytes + idxBytes)
	case "bcsr", "bell":
		if block < 1 {
			block = 1
		}
		b := int64(block)
		blockRows := (rows + b - 1) / b
		blockCols := (cols + b - 1) / b
		if format == "bell" {
			// ELL over blocks: every block row is padded to the worst
			// block count, itself at most min(blockCols, b·MaxRow).
			maxBlocks := min(blockCols, b*int64(pr.MaxRow))
			return blockRows*maxBlocks*(b*b*valBytes+idxBytes) + (blockRows+1)*idxBytes
		}
		// Worst case: every nonzero opens its own block.
		blocks := min(nnz, blockRows*blockCols)
		return blocks*(b*b*valBytes+idxBytes) + (blockRows+1)*idxBytes
	default:
		// Unknown format: assume COO-like triplet storage.
		return nnz * (valBytes + 2*idxBytes)
	}
}

// Fallback returns the format the harness degrades to when `format`'s
// estimate exceeds the budget. Padded and blocked formats fall back to CSR
// (exact nonzero storage); CSR falls back to COO; COO has nowhere left to
// go, so the run fails with ErrOverBudget.
func Fallback(format string) (string, bool) {
	switch format {
	case "ell", "bell", "bcsr", "sellcs":
		return "csr", true
	case "csr", "csc":
		return "coo", true
	default:
		return "", false
	}
}

// FormatOf extracts the format family from a registry kernel name:
// "ell-omp-t" → "ell", "vendor-csr-gpu" → "csr".
func FormatOf(kernelName string) string {
	name := strings.TrimPrefix(kernelName, "vendor-")
	if i := strings.IndexByte(name, '-'); i > 0 {
		return name[:i]
	}
	return name
}

// fallbackKernel rewrites a registry kernel name to the same mode and
// variant in the fallback format: "ell-omp" → "csr-omp",
// "bell-gpu" → "csr-gpu". The suffix (mode, -t, -fixedk) is preserved.
func fallbackKernel(kernelName, from, to string) string {
	name := strings.TrimPrefix(kernelName, "vendor-")
	if name == from {
		return to
	}
	if strings.HasPrefix(name, from+"-") {
		return to + strings.TrimPrefix(name, from)
	}
	return kernelName
}

// ParseBytes parses a human-readable byte size for the -mem-budget flag:
// a plain integer is bytes, and the case-insensitive suffixes kb/kib,
// mb/mib, gb/gib (and a bare b) select binary multiples.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	if t == "" {
		return 0, fmt.Errorf("harness: empty byte size")
	}
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{
		{"kib", 1 << 10}, {"kb", 1 << 10},
		{"mib", 1 << 20}, {"mb", 1 << 20},
		{"gib", 1 << 30}, {"gb", 1 << 30},
		{"b", 1},
	} {
		if strings.HasSuffix(t, u.suffix) {
			t = strings.TrimSuffix(t, u.suffix)
			mult = u.mult
			break
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("harness: bad byte size %q", s)
	}
	return int64(v * float64(mult)), nil
}

// FormatBytesHuman renders a byte count for logs: 1536 → "1.5KiB".
func FormatBytesHuman(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
