package perf

import (
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: some CPU
BenchmarkCalculate/csr-serial-4         	     100	  11853175 ns/op	  5123 MFLOPS	       0 B/op	       0 allocs/op
BenchmarkCalculate/ell-serial-4         	      50	  22000000 ns/op	       16 B/op	       1 allocs/op
BenchmarkSchedule/static-4              	     200	   5000000 ns/op
BenchmarkSchedule/balanced              	     300	   4000000 ns/op
PASS
ok  	repro	12.3s
`

func TestParse(t *testing.T) {
	got, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d entries, want 4: %v", len(got), got)
	}
	csr := got["BenchmarkCalculate/csr-serial"]
	if csr.N != 100 || csr.NsPerOp != 11853175 || csr.BytesPerOp != 0 || csr.AllocsPerOp != 0 {
		t.Fatalf("csr entry wrong: %+v", csr)
	}
	if csr.Metrics["MFLOPS"] != 5123 {
		t.Fatalf("custom metric lost: %+v", csr)
	}
	// GOMAXPROCS suffix stripped, with and without.
	if _, ok := got["BenchmarkSchedule/static"]; !ok {
		t.Fatal("suffix not stripped")
	}
	if _, ok := got["BenchmarkSchedule/balanced"]; !ok {
		t.Fatal("suffix-free name lost")
	}
	// Missing -benchmem leaves the mem fields at -1.
	if e := got["BenchmarkSchedule/static"]; e.BytesPerOp != -1 || e.AllocsPerOp != -1 {
		t.Fatalf("absent benchmem fields should be -1: %+v", e)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("no benchmark lines must error")
	}
}

func TestCompareGate(t *testing.T) {
	base := map[string]Entry{
		"a": {NsPerOp: 1000, AllocsPerOp: 0},
		"b": {NsPerOp: 1000, AllocsPerOp: 2},
		"c": {NsPerOp: 1000, AllocsPerOp: -1},
		"d": {NsPerOp: 1000, AllocsPerOp: 0},
		"f": {NsPerOp: 1000, AllocsPerOp: 0},
		"g": {NsPerOp: 1000, AllocsPerOp: 140},
	}
	fresh := map[string]Entry{
		"a": {NsPerOp: 1100, AllocsPerOp: 0},   // +10%: within 25% tolerance
		"b": {NsPerOp: 900, AllocsPerOp: 3},    // faster but leaks an alloc (+50% > AllocTolerance)
		"c": {NsPerOp: 2000, AllocsPerOp: -1},  // +100%: regression
		"e": {NsPerOp: 9999, AllocsPerOp: 9},   // new benchmark: skipped
		"f": {NsPerOp: 1000, AllocsPerOp: 1},   // 0-alloc gate is exact: 0 -> 1 regresses
		"g": {NsPerOp: 1000, AllocsPerOp: 143}, // e2e HTTP jitter: +2% within AllocTolerance
	}
	deltas := Compare(base, fresh, 0.25)
	if len(deltas) != 5 {
		t.Fatalf("got %d deltas, want 5 (d and e skipped): %+v", len(deltas), deltas)
	}
	// Sorted worst ratio first.
	if deltas[0].Name != "c" || !deltas[0].Regressed {
		t.Fatalf("worst delta should be c: %+v", deltas[0])
	}
	reg := Regressions(deltas)
	if len(reg) != 3 {
		t.Fatalf("got %d regressions, want 3 (c time, b allocs, f zero-alloc): %+v", len(reg), reg)
	}
	for _, d := range reg {
		if d.Name == "a" {
			t.Fatal("a is within tolerance and must not regress")
		}
		if d.Name == "g" {
			t.Fatal("g's alloc jitter is within AllocTolerance and must not regress")
		}
		if d.Reason == "" {
			t.Fatalf("regression without reason: %+v", d)
		}
	}
	names := map[string]bool{}
	for _, d := range reg {
		names[d.Name] = true
	}
	if !names["f"] {
		t.Fatalf("0 -> 1 allocs must regress despite the tolerance: %+v", reg)
	}
}

func TestWriteLoadLatest(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bench")
	for _, date := range []string{"2026-07-01", "2026-07-15", "2026-08-06"} {
		if _, err := Write(dir, Baseline{
			Date:       date,
			Benchmarks: map[string]Entry{"x": {NsPerOp: 42}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	b, path, ok, err := Latest(dir, "")
	if err != nil || !ok {
		t.Fatalf("Latest: %v ok=%v", err, ok)
	}
	if b.Date != "2026-08-06" || filepath.Base(path) != "BENCH_2026-08-06.json" {
		t.Fatalf("latest = %s (%s)", b.Date, path)
	}
	// Excluding today's snapshot steps back to the previous one.
	prev, _, ok, err := Latest(dir, "2026-08-06")
	if err != nil || !ok {
		t.Fatalf("Latest exclude: %v ok=%v", err, ok)
	}
	if prev.Date != "2026-07-15" {
		t.Fatalf("previous = %s, want 2026-07-15", prev.Date)
	}
	if prev.Benchmarks["x"].NsPerOp != 42 {
		t.Fatalf("roundtrip lost data: %+v", prev)
	}
	// Empty dir: no baseline, no error.
	if _, _, ok, err := Latest(t.TempDir(), ""); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	if _, err := Write(dir, Baseline{}); err == nil {
		t.Fatal("dateless baseline accepted")
	}
}
