// Package perf is the benchmark-regression harness: it parses `go test
// -bench` output, snapshots the numbers as a dated JSON baseline, and
// compares a fresh run against the previous baseline with a tolerance
// gate. scripts/bench.sh drives it through `spmmbench -perf-baseline`, so
// a perf regression fails the same way a broken test does — before it
// lands, not three PRs later.
package perf

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's measurement.
type Entry struct {
	// N is the iteration count the harness settled on.
	N int64 `json:"n"`
	// NsPerOp is wall time per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp come from -benchmem; -1 when the run
	// didn't report them.
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric units (MFLOPS, model-MFLOPS, …).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is a dated snapshot of a benchmark run.
type Baseline struct {
	// Date is the snapshot day, YYYY-MM-DD — it names the file.
	Date string `json:"date"`
	// Label is free-form provenance (host, flags); informational only.
	Label string `json:"label,omitempty"`
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to its
	// measurement.
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// benchLine matches "BenchmarkName-8   123   456 ns/op   [value unit]...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// Parse reads `go test -bench` output and returns the benchmark entries,
// keyed by name with the trailing -GOMAXPROCS suffix stripped so baselines
// stay comparable across hosts. Non-benchmark lines (PASS, ok, logs) are
// ignored. Duplicate names keep the last occurrence.
func Parse(r io.Reader) (map[string]Entry, error) {
	out := map[string]Entry{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{N: n, BytesPerOp: -1, AllocsPerOp: -1}
		fields := strings.Fields(m[3])
		// Measurements come in "value unit" pairs.
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("perf: bad value %q in %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			default:
				if e.Metrics == nil {
					e.Metrics = map[string]float64{}
				}
				e.Metrics[unit] = v
			}
		}
		if e.NsPerOp == 0 && e.Metrics == nil {
			continue // header or malformed line that happened to match
		}
		out[m[1]] = e
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("perf: no benchmark lines found")
	}
	return out, nil
}

// Delta is one benchmark's old-vs-new comparison.
type Delta struct {
	Name      string
	OldNs     float64
	NewNs     float64
	Ratio     float64 // NewNs / OldNs; 1.0 = unchanged
	OldAllocs float64
	NewAllocs float64
	// Regressed is set when the delta trips the gate; Reason says why.
	Regressed bool
	Reason    string
}

// AllocTolerance is the relative slack on allocs/op before a growth counts
// as a regression. In-process benchmarks allocate deterministically, but the
// end-to-end HTTP serving benches do not: net/http's connection setup,
// sync.Pool refills, and timer churn amortize differently run to run, so a
// ~140-alloc/op bench can read ±3 on an identical binary. A small relative
// tolerance absorbs that jitter exactly where it occurs while keeping the
// gates that matter hard: a 0-alloc baseline still fails on the first alloc
// (0 × anything = 0), and low-alloc benches still fail on +1 (1/12 > 5%).
const AllocTolerance = 0.05

// Compare gates a new run against a baseline. A benchmark regresses when
// its ns/op exceeds the baseline by more than tol (e.g. 0.25 = +25%), or
// when its allocs/op grows beyond AllocTolerance. Benchmarks present in
// only one of the two sets are skipped (new benches aren't regressions).
// Deltas come back sorted worst-ratio first.
func Compare(base, fresh map[string]Entry, tol float64) []Delta {
	deltas := []Delta{}
	for name, nw := range fresh {
		old, ok := base[name]
		if !ok {
			continue
		}
		d := Delta{
			Name:      name,
			OldNs:     old.NsPerOp,
			NewNs:     nw.NsPerOp,
			OldAllocs: old.AllocsPerOp,
			NewAllocs: nw.AllocsPerOp,
		}
		if old.NsPerOp > 0 {
			d.Ratio = nw.NsPerOp / old.NsPerOp
		}
		switch {
		case old.NsPerOp > 0 && nw.NsPerOp > old.NsPerOp*(1+tol):
			d.Regressed = true
			d.Reason = fmt.Sprintf("%.0f ns/op -> %.0f ns/op (+%.0f%%, tolerance %.0f%%)",
				old.NsPerOp, nw.NsPerOp, (d.Ratio-1)*100, tol*100)
		case old.AllocsPerOp >= 0 && nw.AllocsPerOp > old.AllocsPerOp*(1+AllocTolerance):
			d.Regressed = true
			d.Reason = fmt.Sprintf("allocs/op grew %.0f -> %.0f (tolerance %.0f%%)",
				old.AllocsPerOp, nw.AllocsPerOp, AllocTolerance*100)
		}
		deltas = append(deltas, d)
	}
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].Ratio != deltas[j].Ratio {
			return deltas[i].Ratio > deltas[j].Ratio
		}
		return deltas[i].Name < deltas[j].Name
	})
	return deltas
}

// Regressions filters a comparison down to the gate failures.
func Regressions(deltas []Delta) []Delta {
	out := []Delta{}
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// FileName returns the baseline file name for a date: BENCH_<date>.json.
func FileName(date string) string { return "BENCH_" + date + ".json" }

// Write stores a baseline as dir/BENCH_<date>.json (creating dir),
// overwriting any same-day snapshot.
func Write(dir string, b Baseline) (string, error) {
	if b.Date == "" {
		return "", fmt.Errorf("perf: baseline needs a date")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("perf: %w", err)
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return "", fmt.Errorf("perf: %w", err)
	}
	path := filepath.Join(dir, FileName(b.Date))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("perf: %w", err)
	}
	return path, nil
}

// Load reads one baseline file.
func Load(path string) (Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Baseline{}, fmt.Errorf("perf: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return Baseline{}, fmt.Errorf("perf: %s: %w", path, err)
	}
	return b, nil
}

// Latest returns the newest baseline in dir, excluding any file for
// excludeDate (so today's fresh snapshot is never compared to itself).
// The dated file names sort chronologically, so lexicographic order is
// enough. Returns ok=false when no prior baseline exists.
func Latest(dir, excludeDate string) (Baseline, string, bool, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return Baseline{}, "", false, fmt.Errorf("perf: %w", err)
	}
	sort.Strings(matches)
	for i := len(matches) - 1; i >= 0; i-- {
		if excludeDate != "" && filepath.Base(matches[i]) == FileName(excludeDate) {
			continue
		}
		b, err := Load(matches[i])
		if err != nil {
			return Baseline{}, "", false, err
		}
		return b, matches[i], true, nil
	}
	return Baseline{}, "", false, nil
}
