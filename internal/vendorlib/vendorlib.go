// Package vendorlib is the suite's stand-in for the cuSPARSE library of the
// thesis' Study 7. It provides hand-tuned GPU-simulator SpMM kernels for
// the two formats cuSPARSE exposes that match the suite's (COO and CSR).
// The tuning is the standard vendor playbook:
//
//   - warp-per-row mapping with the 32 lanes spread across the k (B column)
//     dimension, so B and C accesses are perfectly coalesced;
//   - A's column index and value loaded once per nonzero as a uniform
//     (broadcast) load, not re-gathered for every output column;
//   - no atomics for CSR; COO uses per-row segments so atomics are only
//     needed at segment boundaries (modelled as one atomic pass per row
//     boundary).
//
// Against the naive "OpenMP offload" kernels in package gpusim, these win
// for the same structural reasons cuSPARSE won in the thesis.
package vendorlib

import (
	"repro/internal/formats"
	"repro/internal/gpusim"
	"repro/internal/matrix"
)

// SpMMCSR runs the tuned warp-per-row CSR SpMM on the device.
// C[:, :k] is overwritten.
func SpMMCSR(d *gpusim.Device, a *formats.CSR[float64], b, c *matrix.Dense[float64], k int) (gpusim.LaunchResult, error) {
	if err := checkShapes(a.Rows, a.Cols, b, c, k); err != nil {
		return gpusim.LaunchResult{}, err
	}
	defer d.FreeAll()
	rowPtr, err := d.AllocI32(len(a.RowPtr), a.RowPtr)
	if err != nil {
		return gpusim.LaunchResult{}, err
	}
	colIdx, err := d.AllocI32(len(a.ColIdx), a.ColIdx)
	if err != nil {
		return gpusim.LaunchResult{}, err
	}
	vals, err := d.AllocF64(len(a.Vals), a.Vals)
	if err != nil {
		return gpusim.LaunchResult{}, err
	}
	bd, err := gpusim.UploadDenseK(d, b, k)
	if err != nil {
		return gpusim.LaunchResult{}, err
	}
	cd, err := d.AllocF64(a.Rows*k, nil)
	if err != nil {
		return gpusim.LaunchResult{}, err
	}

	rows := a.Rows
	const warpsPerBlock = 8
	blocks := (rows + warpsPerBlock - 1) / warpsPerBlock
	res, err := d.Launch(blocks, warpsPerBlock*gpusim.WarpSize, func(w *gpusim.Warp) {
		row := w.GlobalWarp() // one warp per matrix row
		if row >= rows {
			return
		}
		start := w.BroadcastI32(rowPtr, int32(row), gpusim.FullMask)
		end := w.BroadcastI32(rowPtr, int32(row)+1, gpusim.FullMask)
		crow := cd.Data[row*k : (row+1)*k]
		clear(crow)
		for p := start; p < end; p++ {
			// Uniform loads: every lane needs the same col/val.
			col := w.BroadcastI32(colIdx, p, gpusim.FullMask)
			v := w.BroadcastF64(vals, p, gpusim.FullMask)
			// Lanes tile the k dimension: perfectly coalesced B access.
			w.GatherF64Coalesced(bd, col*int32(k), k, gpusim.FullMask)
			w.FMAN((k+gpusim.WarpSize-1)/gpusim.WarpSize, gpusim.FullMask)
			if v != 0 {
				brow := bd.Data[int(col)*k : int(col)*k+k]
				for j := range crow {
					crow[j] += v * brow[j]
				}
			}
		}
		// One coalesced store of the row's accumulators.
		w.ScatterF64Coalesced(cd, int32(row*k), k, gpusim.FullMask)
	})
	if err != nil {
		return gpusim.LaunchResult{}, err
	}
	gpusim.DownloadDenseK(cd, c, k)
	return res, nil
}

// SpMMCOO runs the tuned COO SpMM: warps own contiguous nonzero segments
// (row-major sorted), lanes tile the k dimension, and partial row sums are
// flushed with an atomic only when the row changes within the segment —
// the segmented-reduction strategy of vendor COO kernels.
func SpMMCOO(d *gpusim.Device, a *matrix.COO[float64], b, c *matrix.Dense[float64], k int) (gpusim.LaunchResult, error) {
	if err := checkShapes(a.Rows, a.Cols, b, c, k); err != nil {
		return gpusim.LaunchResult{}, err
	}
	defer d.FreeAll()
	rowIdx, err := d.AllocI32(len(a.RowIdx), a.RowIdx)
	if err != nil {
		return gpusim.LaunchResult{}, err
	}
	colIdx, err := d.AllocI32(len(a.ColIdx), a.ColIdx)
	if err != nil {
		return gpusim.LaunchResult{}, err
	}
	vals, err := d.AllocF64(len(a.Vals), a.Vals)
	if err != nil {
		return gpusim.LaunchResult{}, err
	}
	bd, err := gpusim.UploadDenseK(d, b, k)
	if err != nil {
		return gpusim.LaunchResult{}, err
	}
	cd, err := d.AllocF64(a.Rows*k, nil)
	if err != nil {
		return gpusim.LaunchResult{}, err
	}

	nnz := a.NNZ()
	const segment = 128 // nonzeros per warp
	const warpsPerBlock = 8
	totalWarps := (nnz + segment - 1) / segment
	blocks := (totalWarps + warpsPerBlock - 1) / warpsPerBlock
	res, err := d.Launch(blocks, warpsPerBlock*gpusim.WarpSize, func(w *gpusim.Warp) {
		seg := w.GlobalWarp()
		lo := seg * segment
		if lo >= nnz {
			return
		}
		hi := min(lo+segment, nnz)
		acc := make([]float64, k)
		curRow := int32(-1)
		flush := func(row int32) {
			if row < 0 {
				return
			}
			// Segment boundaries may split a row across warps, so the
			// flush must accumulate atomically (coalesced addresses).
			w.AtomicAddF64Coalesced(cd, row*int32(k), k, gpusim.FullMask)
			crow := cd.Data[int(row)*k : int(row)*k+k]
			for j := range acc {
				crow[j] += acc[j]
				acc[j] = 0
			}
		}
		for p := lo; p < hi; p++ {
			row := w.BroadcastI32(rowIdx, int32(p), gpusim.FullMask)
			col := w.BroadcastI32(colIdx, int32(p), gpusim.FullMask)
			v := w.BroadcastF64(vals, int32(p), gpusim.FullMask)
			if row != curRow {
				flush(curRow)
				curRow = row
			}
			w.GatherF64Coalesced(bd, col*int32(k), k, gpusim.FullMask)
			w.FMAN((k+gpusim.WarpSize-1)/gpusim.WarpSize, gpusim.FullMask)
			if v != 0 {
				brow := bd.Data[int(col)*k : int(col)*k+k]
				for j := range acc {
					acc[j] += v * brow[j]
				}
			}
		}
		flush(curRow)
	})
	if err != nil {
		return gpusim.LaunchResult{}, err
	}
	gpusim.DownloadDenseK(cd, c, k)
	return res, nil
}

func checkShapes(ar, ac int, b, c *matrix.Dense[float64], k int) error {
	if k < 0 || k > b.Cols || k > c.Cols || b.Rows != ac || c.Rows != ar {
		return gpusim.ErrLaunch
	}
	return nil
}
