package vendorlib

import (
	"math/rand"
	"testing"

	"repro/internal/formats"
	"repro/internal/gpusim"
	"repro/internal/kernels"
	"repro/internal/matrix"
)

func testMatrix(seed int64, rows, cols, nnz int) *matrix.COO[float64] {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewCOO[float64](rows, cols, nnz)
	for i := 0; i < nnz; i++ {
		m.Append(int32(rng.Intn(rows)), int32(rng.Intn(cols)), rng.NormFloat64())
	}
	m.Dedup()
	return m
}

func newDevice(t *testing.T) *gpusim.Device {
	t.Helper()
	d, err := gpusim.NewDevice(gpusim.TestDevice(1 << 30))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func reference(t *testing.T, coo *matrix.COO[float64], b *matrix.Dense[float64], k int) *matrix.Dense[float64] {
	t.Helper()
	want := matrix.NewDense[float64](coo.Rows, k)
	bk, _ := b.View(0, 0, b.Rows, k)
	if err := kernels.GEMM(coo.ToDense(), bk.Clone(), want); err != nil {
		t.Fatal(err)
	}
	return want
}

func TestVendorKernelsMatchReference(t *testing.T) {
	for _, k := range []int{8, 32, 50, 96} {
		coo := testMatrix(int64(k), 80, 60, 700)
		csr := formats.CSRFromCOO(coo)
		b := matrix.NewDenseRand[float64](60, 128, 7)
		want := reference(t, coo, b, k)
		d := newDevice(t)

		c := matrix.NewDense[float64](80, 128)
		if _, err := SpMMCSR(d, csr, b, c, k); err != nil {
			t.Fatal(err)
		}
		view, _ := c.View(0, 0, 80, k)
		if !view.Clone().EqualTol(want, 1e-9) {
			t.Fatalf("k=%d: vendor CSR mismatch", k)
		}

		c = matrix.NewDense[float64](80, 128)
		if _, err := SpMMCOO(d, coo, b, c, k); err != nil {
			t.Fatal(err)
		}
		view, _ = c.View(0, 0, 80, k)
		if !view.Clone().EqualTol(want, 1e-9) {
			t.Fatalf("k=%d: vendor COO mismatch", k)
		}
	}
}

func TestVendorCOOHandlesRowsSpanningSegments(t *testing.T) {
	// One row with 1000 nonzeros spans many 128-entry segments; the
	// atomic flushes must accumulate, not overwrite.
	m := matrix.NewCOO[float64](4, 1200, 1000)
	for j := 0; j < 1000; j++ {
		m.Append(1, int32(j), 1)
	}
	b := matrix.NewDense[float64](1200, 32)
	for i := range b.Data {
		b.Data[i] = 1
	}
	c := matrix.NewDense[float64](4, 32)
	d := newDevice(t)
	if _, err := SpMMCOO(d, m, b, c, 32); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 32; j++ {
		if c.At(1, j) != 1000 {
			t.Fatalf("C[1][%d] = %v, want 1000", j, c.At(1, j))
		}
		if c.At(0, j) != 0 || c.At(2, j) != 0 {
			t.Fatal("untouched rows must stay zero")
		}
	}
}

func TestVendorBeatsNaiveOnTypicalMatrix(t *testing.T) {
	// A FEM-like matrix with k=128: the tuned kernels' coalesced B access
	// must beat the naive offload kernels — the Study 7 headline.
	coo := testMatrix(42, 512, 512, 8000)
	csr := formats.CSRFromCOO(coo)
	b := matrix.NewDenseRand[float64](512, 128, 9)
	c := matrix.NewDense[float64](512, 128)
	d := newDevice(t)

	naive, err := gpusim.SpMMCSR(d, csr, b, c, 128)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := SpMMCSR(d, csr, b, c, 128)
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Seconds >= naive.Seconds {
		t.Fatalf("vendor CSR (%.3gs) should beat naive (%.3gs)", tuned.Seconds, naive.Seconds)
	}
	if tuned.Stats.CoalescingEfficiency() <= naive.Stats.CoalescingEfficiency() {
		t.Fatalf("vendor coalescing %.3f should beat naive %.3f",
			tuned.Stats.CoalescingEfficiency(), naive.Stats.CoalescingEfficiency())
	}

	naiveCOO, err := gpusim.SpMMCOO(d, coo, b, c, 128)
	if err != nil {
		t.Fatal(err)
	}
	tunedCOO, err := SpMMCOO(d, coo, b, c, 128)
	if err != nil {
		t.Fatal(err)
	}
	if tunedCOO.Seconds >= naiveCOO.Seconds {
		t.Fatalf("vendor COO (%.3gs) should beat naive (%.3gs)", tunedCOO.Seconds, naiveCOO.Seconds)
	}
}

func TestVendorShapeErrors(t *testing.T) {
	coo := testMatrix(1, 10, 10, 20)
	csr := formats.CSRFromCOO(coo)
	b := matrix.NewDense[float64](10, 8)
	c := matrix.NewDense[float64](10, 8)
	d := newDevice(t)
	if _, err := SpMMCSR(d, csr, b, c, 16); err == nil {
		t.Fatal("oversized k accepted")
	}
	badB := matrix.NewDense[float64](11, 8)
	if _, err := SpMMCOO(d, coo, badB, c, 8); err == nil {
		t.Fatal("mismatched B accepted")
	}
}
