// Command spmmrouter fronts a fleet of spmmserve replicas with a
// consistent-hash router: content-addressed matrix IDs shard across the
// fleet by hash ring, hot matrices replicate to a secondary holder with
// load-aware spillover, a health prober ejects unresponsive replicas and
// re-admits them on recovery, and replicas can join or leave at runtime
// without draining traffic (moved matrices are registered and warmed on
// their new owner before the ring cuts over). The front speaks the
// spmmserve wire protocol, so existing clients — spmmload included —
// work against a cluster unchanged. See internal/cluster.
//
// Examples:
//
//	spmmrouter -addr :8070 -replicas a=http://127.0.0.1:8081,b=http://127.0.0.1:8082
//	spmmrouter -addr :8070 -replicas a=http://10.0.0.1:8080 -replicate-after 8 -metrics :9091
//
// Runtime membership changes go through the control plane:
//
//	curl -X POST :8070/v1/cluster/join -d '{"name":"c","base":"http://127.0.0.1:8083"}'
//	curl -X POST :8070/v1/cluster/leave -d '{"name":"a"}'
//	curl :8070/v1/cluster          # ring, placements, health, counters
//
// With -reqtrace-ring > 0 every multiply is traced end to end — the rid in
// the X-Spmm-Request-Id response header keys the distributed timeline:
//
//	curl ':8070/v1/trace/requests?min_ms=5'       # recent per-request timelines
//	curl :8070/v1/trace/requests/<rid>/chrome     # stitched Chrome trace (Perfetto-loadable)
//
// SIGINT stops the listener and the health prober; in-flight proxied
// requests complete.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

func main() {
	var (
		addr        = flag.String("addr", ":8070", "router listen address (use :0 for an ephemeral port)")
		replicas    = flag.String("replicas", "", "comma-separated initial fleet as name=baseURL pairs (required)")
		metricsAddr = flag.String("metrics", "", "serve /metrics, /healthz and /debug/vars on this address (e.g. :9091)")
		vnodes      = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per replica on the hash ring")
		replAfter   = flag.Int64("replicate-after", 16, "serve count past which a matrix replicates to a secondary holder (0 disables)")
		maxHolders  = flag.Int("max-holders", 2, "max replicas holding one matrix")
		spillMargin = flag.Int64("spill-margin", 2, "in-flight gap beyond which multiplies spill to a less-loaded holder")
		probeEvery  = flag.Duration("probe-interval", time.Second, "health probe cadence")
		probeTime   = flag.Duration("probe-timeout", 500*time.Millisecond, "per-probe timeout")
		ejectAfter  = flag.Int("eject-after", 2, "consecutive probe failures that eject a replica")
		attemptTime = flag.Duration("attempt-timeout", 30*time.Second, "per-proxy-attempt timeout before failing over (0 = none)")
		reqRing     = flag.Int("reqtrace-ring", 512, "per-request tracing: keep the last N request records, answer /v1/trace/requests, and stitch /v1/trace/requests/{rid}/chrome (0 disables)")
		slowReq     = flag.Duration("slow", time.Second, "log a request-ID-correlated warning for requests slower than this (0 disables; needs -reqtrace-ring > 0)")
	)
	flag.Parse()

	fleet, err := parseReplicas(*replicas)
	if err != nil {
		fatal(err)
	}
	logger := log.New(os.Stderr, "spmmrouter: ", log.LstdFlags)

	rt, err := cluster.New(cluster.Config{
		Replicas:       fleet,
		VNodes:         *vnodes,
		ReplicateAfter: *replAfter,
		MaxHolders:     *maxHolders,
		SpillMargin:    *spillMargin,
		ProbeInterval:  *probeEvery,
		ProbeTimeout:   *probeTime,
		EjectAfter:     *ejectAfter,
		AttemptTimeout: *attemptTime,
		ReqTraceRing:   *reqRing,
		SlowRequest:    *slowReq,
		Slog:           slog.New(slog.NewTextHandler(os.Stderr, nil)),
		Log:            logger,
	})
	if err != nil {
		fatal(err)
	}
	defer rt.Close()

	var monitor *obs.Server
	if *metricsAddr != "" {
		monitor, err = obs.Serve(*metricsAddr, obs.ServerOpts{Pprof: true})
		if err != nil {
			fatal(err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: rt.Handler(), ReadHeaderTimeout: 5 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	done := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			done <- err
			return
		}
		done <- nil
	}()
	names := make([]string, 0, len(fleet))
	for _, r := range fleet {
		names = append(names, r.Name)
	}
	logger.Printf("listening on %s, fleet %v, %d vnodes", ln.Addr().String(), names, *vnodes)

	select {
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	case <-ctx.Done():
		logger.Printf("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			logger.Printf("shutdown incomplete: %v", err)
		}
		cancel()
		<-done
	}
	if monitor != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		monitor.Close(shutCtx)
		cancel()
	}
	logger.Printf("stopped")
}

// parseReplicas turns "a=http://host:port,b=..." into the initial fleet.
func parseReplicas(spec string) ([]cluster.JoinRequest, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("-replicas is required (name=baseURL[,name=baseURL...])")
	}
	var out []cluster.JoinRequest
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, base, ok := strings.Cut(part, "=")
		if !ok || name == "" || base == "" {
			return nil, fmt.Errorf("bad replica %q, want name=baseURL", part)
		}
		out = append(out, cluster.JoinRequest{
			Name: strings.TrimSpace(name),
			Base: strings.TrimRight(strings.TrimSpace(base), "/"),
		})
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spmmrouter:", err)
	os.Exit(1)
}
