// Command spmmbench benchmarks a single SpMM kernel on one matrix — the
// suite's equivalent of the thesis' per-kernel benchmark binaries. The
// flags mirror the thesis CLI (§4.3): repetitions, thread count, block
// size, the k-loop length, an optional thread-count list for the Study 3.1
// sweep, and a debug flag.
//
// The matrix is either a registry name (one of the thesis' 14, synthesised
// on the fly, optionally scaled) or a MatrixMarket file.
//
// Examples:
//
//	spmmbench -kernel csr-omp -matrix cant -scale 0.1 -t 8 -k 128
//	spmmbench -kernel bcsr-serial -matrix path/to/matrix.mtx -b 4
//	spmmbench -kernel csr-omp -matrix dw4096 -threads-list 2,4,8,16
//	spmmbench -kernel csr-gpu -matrix cant -scale 0.05 -device h100
//	spmmbench -list
//
// Campaign mode: when -kernel or -matrix holds a comma-separated list, or
// any of the resilience flags (-timeout, -retries, -mem-budget, -journal,
// -resume) is set, the cross product runs through the resilient campaign
// harness — panicking or failing runs are contained and recorded instead of
// aborting the sweep, transient failures retry with backoff, over-budget
// formats degrade to CSR/COO, and -journal/-resume checkpoint the campaign:
//
//	spmmbench -kernel csr-omp,ell-omp -matrix cant,torso1 \
//	    -timeout 60s -retries 2 -mem-budget 1GiB -journal camp.jsonl -resume
//
// Scheduling: -schedule balanced switches the CPU-parallel kernels from
// row-static chunks (the thesis' OpenMP baseline) to nonzero-balanced
// chunks, and -pool runs them on one persistent worker pool — in campaign
// mode the whole sweep reuses the same warmed workers:
//
//	spmmbench -kernel csr-omp -matrix torso1 -t 8 -schedule balanced -pool
//
// Perf gate: -perf-baseline parses `go test -bench` output, snapshots it
// as <dir>/BENCH_<date>.json and fails against the previous baseline when
// ns/op grows past -perf-tolerance or allocs/op grows at all
// (scripts/bench.sh is the normal driver):
//
//	go test -run '^$' -bench . -benchmem . | spmmbench -perf-baseline results/bench
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // -pprof opt-in profiling endpoint
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/gpusim"
	"repro/internal/harness"
	"repro/internal/kernels"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/mmio"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/perf"
	"repro/internal/trace"
)

func main() {
	var (
		kernelName  = flag.String("kernel", "csr-serial", "kernel registry name (see -list)")
		op          = flag.String("op", "spmm", "operation: spmm or spmv (future-work §6.3.4)")
		matrixName  = flag.String("matrix", "cant", "registry matrix name or path to a .mtx file")
		scale       = flag.Float64("scale", 0.05, "scale factor for registry matrices")
		reps        = flag.Int("n", 5, "timed repetitions of the calculation")
		threads     = flag.Int("t", 32, "thread count for parallel kernels")
		block       = flag.Int("b", 4, "block size for blocked formats")
		kArg        = flag.Int("k", 128, "k-loop length (columns of B)")
		threadsList = flag.String("threads-list", "", "comma-separated thread counts: run the best-thread sweep")
		device      = flag.String("device", "h100", "simulated GPU for gpu kernels: h100 or a100")
		verify      = flag.Bool("verify", true, "verify against the COO reference kernel")
		debug       = flag.Bool("debug", false, "verbose output")
		list        = flag.Bool("list", false, "list available kernels and matrices, then exit")

		schedule = flag.String("schedule", "static", "parallel work partition: static (equal rows, the thesis' OpenMP baseline) or balanced (equal nonzeros, for skewed matrices)")
		usePool  = flag.Bool("pool", false, "run parallel kernels on one persistent worker pool instead of spawning goroutines per call")

		timeout   = flag.Duration("timeout", 0, "campaign: per-run timeout (0 disables)")
		retries   = flag.Int("retries", 0, "campaign: extra attempts for transient failures")
		memBudget = flag.String("mem-budget", "", "campaign: per-run format footprint budget, e.g. 512MiB")
		journal   = flag.String("journal", "", "campaign: JSONL checkpoint journal path")
		jnlNoSync = flag.Bool("journal-nosync", false, "campaign: skip the per-append journal fsync (faster, loses machine-crash durability)")
		resume    = flag.Bool("resume", false, "campaign: skip runs already recorded in -journal")

		traceOut  = flag.String("trace", "", "write a Chrome trace_event JSON of the run to this file (open in chrome://tracing or https://ui.perfetto.dev)")
		traceSum  = flag.Bool("trace-summary", false, "print the per-phase time summary table after the run")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) while the run executes")

		serveAddr = flag.String("serve", "", "serve /metrics (Prometheus), /healthz, /debug/vars and /debug/pprof on this address for the duration of the run, e.g. :9090 (use :0 for an ephemeral port)")
		logFormat = flag.String("log-format", "text", "structured log format on stderr: text or json")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn or error")

		perfBaseline = flag.String("perf-baseline", "", "perf gate: parse `go test -bench` output (stdin or -perf-input), snapshot a dated baseline into this directory and compare against the previous one")
		perfInput    = flag.String("perf-input", "", "perf gate: bench output file (default: stdin)")
		perfTol      = flag.Float64("perf-tolerance", 0.25, "perf gate: allowed fractional ns/op growth before failing (allocs/op growth always fails)")
		perfLabel    = flag.String("perf-label", "", "perf gate: provenance note stored in the baseline")
	)
	flag.Parse()

	if *perfBaseline != "" {
		runPerfGate(*perfBaseline, *perfInput, *perfTol, *perfLabel)
		return
	}

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		fatal(err)
	}

	// The observability endpoint lives for the whole run: scrape
	// http://<addr>/metrics mid-campaign to watch progress counters climb.
	var srv *obs.Server
	if *serveAddr != "" {
		srv, err = obs.Serve(*serveAddr, obs.ServerOpts{Pprof: true, Log: logger})
		if err != nil {
			fatal(err)
		}
		defer closeServer(srv, logger)
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "spmmbench: pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "spmmbench: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	// The tracer is sized to one pipeline lane plus one lane per worker the
	// run can use; the ring keeps the newest 32Ki spans per lane.
	var tracer *trace.Tracer
	if *traceOut != "" || *traceSum {
		lanes := *threads + 2
		for _, tok := range strings.Split(*threadsList, ",") {
			if v, err := strconv.Atoi(strings.TrimSpace(tok)); err == nil && v+2 > lanes {
				lanes = v + 2
			}
		}
		tracer = trace.New(lanes, 1<<15)
		tracer.SetEnabled(true)
		parallel.SetTracer(tracer)
		defer func() {
			parallel.SetTracer(nil)
			if *traceOut != "" {
				f, err := os.Create(*traceOut)
				if err != nil {
					fatal(err)
				}
				if err := tracer.WriteChromeTrace(f); err != nil {
					f.Close()
					fatal(err)
				}
				if err := f.Close(); err != nil {
					fatal(err)
				}
				fmt.Fprintf(os.Stderr, "spmmbench: trace written to %s (%d spans)\n", *traceOut, tracer.Len())
			}
			if *traceSum {
				fmt.Println()
				if err := tracer.Summary().WriteTable(os.Stdout); err != nil {
					fatal(err)
				}
			}
		}()
	}

	var sched kernels.Schedule
	switch *schedule {
	case "static":
		sched = kernels.ScheduleStatic
	case "balanced":
		sched = kernels.ScheduleBalanced
	default:
		fatal(fmt.Errorf("unknown -schedule %q (static or balanced)", *schedule))
	}
	var pool *parallel.Pool
	if *usePool {
		pool = parallel.NewPool(*threads)
		defer pool.Close()
	}

	if *list {
		fmt.Println("spmm kernels:")
		for _, n := range core.Names() {
			fmt.Println("  " + n)
		}
		fmt.Println("spmv kernels (use with -op spmv):")
		for _, n := range core.SpMVNames() {
			fmt.Println("  " + n)
		}
		fmt.Println("matrices:")
		for _, n := range gen.Names() {
			fmt.Println("  " + n)
		}
		return
	}

	campaign := *timeout > 0 || *retries > 0 || *memBudget != "" || *journal != "" || *resume ||
		strings.Contains(*kernelName, ",") || strings.Contains(*matrixName, ",")
	if campaign {
		if *op == "spmv" || *threadsList != "" {
			fatal(fmt.Errorf("campaign mode does not combine with -op spmv or -threads-list"))
		}
		if *resume && *journal == "" {
			fatal(fmt.Errorf("-resume needs -journal to know what already ran"))
		}
		budget := int64(0)
		if *memBudget != "" {
			var err error
			budget, err = harness.ParseBytes(*memBudget)
			if err != nil {
				fatal(err)
			}
		}
		p := core.Params{Reps: *reps, Threads: *threads, BlockSize: *block, K: *kArg,
			Verify: *verify, Debug: *debug, Seed: 1, Schedule: sched, Pool: pool, Trace: tracer}
		cfg := harness.Config{
			Timeout: *timeout, Retries: *retries, MemBudget: budget,
			Journal: *journal, JournalNoSync: *jnlNoSync, Resume: *resume, Seed: 1, Logger: logger, Trace: tracer,
		}
		// SIGINT/SIGTERM cancels the campaign between runs (and inside
		// cancellation-aware kernels) and shuts the metrics server down with
		// it; on normal completion the deferred closeServer does the same.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if srv != nil {
			go srv.CloseOn(ctx)
		}
		runCampaign(ctx, logger, splitList(*kernelName), splitList(*matrixName), *scale, *device, p, cfg)
		return
	}

	span := tracer.Start()
	a, err := loadMatrix(*matrixName, *scale)
	if err != nil {
		fatal(err)
	}
	tracer.EndDetail(0, trace.PhaseLoad, *matrixName, span, int64(a.NNZ()))

	if *op == "spmv" {
		k, err := core.NewSpMV(*kernelName)
		if err != nil {
			fatal(err)
		}
		p := core.Params{Reps: *reps, Threads: *threads, BlockSize: *block, K: 1,
			Verify: *verify, Debug: *debug, Seed: 1}
		props := metrics.Compute(a)
		fmt.Printf("matrix: %s  (%dx%d, %d nonzeros)\n", *matrixName, props.Rows, props.Cols, props.NNZ)
		r, err := core.RunSpMV(k, a, *matrixName, p)
		if err != nil {
			fatal(err)
		}
		report(r, *debug)
		return
	}

	opts := core.Options{}
	if strings.HasSuffix(*kernelName, "-gpu") {
		cfg := gpusim.H100Like()
		if *device == "a100" {
			cfg = gpusim.A100Like()
		}
		dev, err := gpusim.NewDevice(cfg)
		if err != nil {
			fatal(err)
		}
		opts.Device = dev
	}
	k, err := core.New(*kernelName, opts)
	if err != nil {
		fatal(err)
	}

	p := core.Params{
		Reps:      *reps,
		Threads:   *threads,
		BlockSize: *block,
		K:         *kArg,
		Verify:    *verify,
		Debug:     *debug,
		Seed:      1,
		Schedule:  sched,
		Pool:      pool,
		Trace:     tracer,
	}

	props := metrics.Compute(a)
	fmt.Printf("matrix: %s  (%dx%d, %d nonzeros, max %d, avg %.1f, ratio %.1f)\n",
		*matrixName, props.Rows, props.Cols, props.NNZ, props.MaxRow, props.AvgRow, props.Ratio)

	if *threadsList != "" {
		for _, tok := range strings.Split(*threadsList, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				fatal(fmt.Errorf("bad -threads-list entry %q: %w", tok, err))
			}
			p.ThreadList = append(p.ThreadList, v)
		}
		best, all, err := core.BestThreads(k, a, *matrixName, p)
		if err != nil {
			fatal(err)
		}
		t := metrics.NewTable("threads", "avg seconds", "MFLOPS")
		for _, r := range all {
			if r.Err != "" {
				t.AddRow(r.Threads, "-", "failed: "+r.Err)
				continue
			}
			t.AddRow(r.Threads, fmt.Sprintf("%.6f", r.AvgSeconds), fmt.Sprintf("%.1f", r.MFLOPS))
		}
		if err := t.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Printf("best thread count: %d (%.1f MFLOPS)\n", all[best].Threads, all[best].MFLOPS)
		return
	}

	r, err := core.Run(k, a, *matrixName, p)
	if err != nil {
		fatal(err)
	}
	report(r, *debug)
}

// runPerfGate is the benchmark-regression harness's CLI face: it parses
// `go test -bench` output, writes today's BENCH_<date>.json into dir, and
// fails (exit 2) when a benchmark regresses past the tolerance against the
// most recent previous baseline. scripts/bench.sh is the normal driver.
func runPerfGate(dir, input string, tol float64, label string) {
	var r io.Reader = os.Stdin
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	entries, err := perf.Parse(r)
	if err != nil {
		fatal(err)
	}
	date := time.Now().Format("2006-01-02")
	prev, prevPath, havePrev, err := perf.Latest(dir, date)
	if err != nil {
		fatal(err)
	}
	path, err := perf.Write(dir, perf.Baseline{Date: date, Label: label, Benchmarks: entries})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("perf baseline: %s (%d benchmarks)\n", path, len(entries))
	if !havePrev {
		fmt.Println("perf gate: no previous baseline — nothing to compare against")
		return
	}
	deltas := perf.Compare(prev.Benchmarks, entries, tol)
	t := metrics.NewTable("benchmark", "old ns/op", "new ns/op", "ratio", "allocs", "verdict")
	for _, d := range deltas {
		verdict := "ok"
		if d.Regressed {
			verdict = "REGRESSED: " + d.Reason
		}
		allocs := "-"
		if d.NewAllocs >= 0 {
			allocs = fmt.Sprintf("%.0f", d.NewAllocs)
		}
		t.AddRow(d.Name, fmt.Sprintf("%.0f", d.OldNs), fmt.Sprintf("%.0f", d.NewNs),
			fmt.Sprintf("%.2f", d.Ratio), allocs, verdict)
	}
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
	if reg := perf.Regressions(deltas); len(reg) > 0 {
		fmt.Fprintf(os.Stderr, "spmmbench: perf gate FAILED vs %s: %d regression(s)\n", prevPath, len(reg))
		os.Exit(2)
	}
	fmt.Printf("perf gate: ok vs %s (%d benchmarks compared, tolerance %.0f%%)\n",
		prevPath, len(deltas), tol*100)
}

func splitList(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// closeServer gracefully shuts the observability endpoint down, bounding the
// drain of in-flight scrapes to two seconds.
func closeServer(srv *obs.Server, logger *slog.Logger) {
	if srv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		logger.Warn("metrics server shutdown", "err", err)
	}
}

// runCampaign executes the kernels × matrices cross product through the
// resilient harness and reports per-run lines plus the campaign counters.
// ctx cancels the campaign between runs (SIGINT wiring lives in main).
func runCampaign(ctx context.Context, logger *slog.Logger, kernels, matrices []string,
	scale float64, device string, p core.Params, cfg harness.Config) {
	h, err := harness.New(cfg)
	if err != nil {
		fatal(err)
	}
	defer h.Close()

	var plan []harness.Spec
	for _, mName := range matrices {
		for _, kName := range kernels {
			opts := core.Options{}
			if strings.Contains(kName, "-gpu") {
				gcfg := gpusim.H100Like()
				if device == "a100" {
					gcfg = gpusim.A100Like()
				}
				dev, err := gpusim.NewDevice(gcfg)
				if err != nil {
					fatal(err)
				}
				opts.Device = dev
			}
			mName := mName
			plan = append(plan, harness.Spec{
				Kernel: kName,
				Matrix: mName,
				Load: func() (*matrix.COO[float64], error) {
					span := cfg.Trace.Start()
					m, err := loadMatrix(mName, scale)
					if err == nil {
						cfg.Trace.EndDetail(0, trace.PhaseLoad, mName, span, int64(m.NNZ()))
					}
					return m, err
				},
				Opts:   opts,
				Params: p,
			})
		}
	}

	start := time.Now()
	logger.Info("campaign starting", "runs", len(plan),
		"kernels", len(kernels), "matrices", len(matrices))
	outs, execErr := h.Execute(ctx, plan)
	for _, o := range outs {
		switch o.Status {
		case harness.StatusFailed:
			fmt.Printf("%-8s  %-18s %-16s %v\n", o.Status, o.Spec.Kernel, o.Spec.Matrix, o.Err)
		case harness.StatusDegraded:
			fmt.Printf("%-8s  %-18s %-16s %.1f MFLOPS (ran %s)\n",
				o.Status, o.Spec.Kernel, o.Spec.Matrix, o.Result.MFLOPS, o.RanKernel)
		case harness.StatusSkipped:
			if o.Result.MFLOPS > 0 {
				fmt.Printf("%-8s  %-18s %-16s %.1f MFLOPS (replayed from journal)\n",
					o.Status, o.Spec.Kernel, o.Spec.Matrix, o.Result.MFLOPS)
			} else {
				fmt.Printf("%-8s  %-18s %-16s previously failed (journaled)\n",
					o.Status, o.Spec.Kernel, o.Spec.Matrix)
			}
		default:
			fmt.Printf("%-8s  %-18s %-16s %.1f MFLOPS\n",
				o.Status, o.Spec.Kernel, o.Spec.Matrix, o.Result.MFLOPS)
		}
	}
	fmt.Printf("\ncampaign: %d runs in %v\n", len(outs), time.Since(start).Round(time.Millisecond))
	for _, cv := range h.Counters().Snapshot() {
		fmt.Printf("  %-10s %d\n", cv.Name, cv.Value)
	}
	if execErr != nil {
		fatal(execErr)
	}
}

func loadMatrix(name string, scale float64) (*matrix.COO[float64], error) {
	if strings.HasSuffix(name, ".mtx") {
		return mmio.ReadFile[float64](name)
	}
	m, _, err := gen.GenerateScaled(name, scale)
	return m, err
}

func report(r core.Result, debug bool) {
	fmt.Printf("kernel:        %s (format %s, %s)\n", r.Kernel, r.Format, r.Mode)
	fmt.Printf("parameters:    k=%d threads=%d block=%d\n", r.K, r.Threads, r.Block)
	fmt.Printf("format time:   %.6f s  (%d bytes)\n", r.FormatSeconds, r.FormatBytes)
	fmt.Printf("calc time:     avg %.6f s, min %.6f s\n", r.AvgSeconds, r.MinSeconds)
	fmt.Printf("performance:   %.1f MFLOPS (%.3f GFLOPS)\n", r.MFLOPS, r.MFLOPS/1e3)
	if r.Verified {
		fmt.Printf("verification:  ok (max abs diff %.3g)\n", r.MaxAbsDiff)
	} else {
		fmt.Println("verification:  skipped")
	}
	if debug {
		fmt.Printf("debug:         %+v\n", r)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spmmbench:", err)
	os.Exit(1)
}
