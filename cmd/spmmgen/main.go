// Command spmmgen synthesises sparse matrices and writes them as
// MatrixMarket files: either the thesis' 14 calibrated evaluation matrices
// or custom synthetic ones.
//
// Examples:
//
//	spmmgen -all -scale 0.1 -out matrices/
//	spmmgen -matrix torso1 -scale 1 -out .
//	spmmgen -custom -rows 10000 -density 0.001 -out .
//	spmmgen -custom -rows 4096 -band 3 -out .
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/mmio"
)

func main() {
	var (
		all     = flag.Bool("all", false, "generate all 14 registry matrices")
		name    = flag.String("matrix", "", "generate one registry matrix by name")
		scale   = flag.Float64("scale", 1, "scale factor for registry matrices")
		out     = flag.String("out", ".", "output directory")
		custom  = flag.Bool("custom", false, "generate a custom synthetic matrix")
		rows    = flag.Int("rows", 1000, "custom: rows (square matrix)")
		density = flag.Float64("density", 0.01, "custom: nonzero density (ignored with -band)")
		band    = flag.Int("band", 0, "custom: banded matrix with this half-width")
		seed    = flag.Int64("seed", 1, "custom: generation seed")
		spy     = flag.Bool("spy", false, "print a spy plot (sparsity pattern) of each generated matrix")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	spyPlots = *spy

	switch {
	case *custom:
		var m *matrix.COO[float64]
		var err error
		label := "custom"
		if *band > 0 {
			m, err = gen.Banded[float64](*rows, *band, *seed)
			label = fmt.Sprintf("banded_%d_%d", *rows, *band)
		} else {
			m, err = gen.UniformRandom[float64](*rows, *rows, *density, *seed)
			label = fmt.Sprintf("uniform_%d_%g", *rows, *density)
		}
		if err != nil {
			fatal(err)
		}
		write(*out, label, m)
	case *all:
		for _, n := range gen.Names() {
			m, _, err := gen.GenerateScaled(n, *scale)
			if err != nil {
				fatal(err)
			}
			write(*out, n, m)
		}
	case *name != "":
		m, _, err := gen.GenerateScaled(*name, *scale)
		if err != nil {
			fatal(err)
		}
		write(*out, *name, m)
	default:
		fmt.Fprintln(os.Stderr, "spmmgen: one of -all, -matrix or -custom is required")
		flag.Usage()
		os.Exit(2)
	}
}

var spyPlots bool

func write(dir, name string, m *matrix.COO[float64]) {
	path := filepath.Join(dir, name+".mtx")
	if err := mmio.WriteFile(path, m); err != nil {
		fatal(err)
	}
	p := metrics.Compute(m)
	fmt.Printf("%s: %dx%d, %d nonzeros, max %d, avg %.1f, ratio %.1f -> %s\n",
		name, p.Rows, p.Cols, p.NNZ, p.MaxRow, p.AvgRow, p.Ratio, path)
	if spyPlots {
		if err := metrics.SpyPlot(os.Stdout, m, 72, 24); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spmmgen:", err)
	os.Exit(1)
}
