// Command spmmserve runs the SpMM service: a long-lived HTTP server that
// registers matrices (content-addressed), prepares each one once into its
// advisor-chosen sparse format (bytes-bounded LRU cache), and serves
// multiply requests with batching and admission control on the shared
// worker pool. See internal/serve for the protocol.
//
// Examples:
//
//	spmmserve -addr :8080 -metrics :9090
//	spmmserve -addr :8080 -cache-mb 64 -batch-window 2ms -max-inflight 8 -queue 32
//	spmmserve -addr :8080 -trace /tmp/serve.trace.json   # Chrome trace on exit
//
// SIGINT drains gracefully: the listener closes, in-flight multiplies (and
// open batches) finish, then the pool and the metrics endpoint shut down.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/tune"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "service listen address (use :0 for an ephemeral port)")
		metricsAddr  = flag.String("metrics", "", "serve /metrics, /healthz, /debug/vars and /debug/pprof on this address (e.g. :9090)")
		threads      = flag.Int("t", parallel.MaxThreads(), "kernel threads per dispatch")
		cacheMB      = flag.Int("cache-mb", 256, "prepared-format cache budget in MiB (0 = unbounded)")
		batchWindow  = flag.Duration("batch-window", 2*time.Millisecond, "coalescing window for same-matrix requests (0 disables batching)")
		maxBatchK    = flag.Int("batch-maxk", 512, "max dense columns per coalesced dispatch")
		maxK         = flag.Int("maxk", 1024, "max dense columns per request")
		maxInFlight  = flag.Int("max-inflight", 0, "max concurrently executing multiplies (0 = 2x threads)")
		queue        = flag.Int("queue", -1, "admission queue depth before 429 shedding (-1 = 4x max-inflight)")
		deadline     = flag.Duration("deadline", 30*time.Second, "default per-request deadline")
		dataDir      = flag.String("data-dir", "", "durability directory: registrations are WAL-journaled (fsynced before ack) and recovered on restart; empty keeps the registry in memory only")
		tuneOn       = flag.Bool("tune", false, "enable the online auto-tuner: shadow-measure kernel variants on live traffic and promote the measured-fastest per matrix")
		tuneDuty     = flag.Float64("tune-duty", 0.05, "fraction of live multiplies shadow-measured by the tuner")
		tuneMinSamp  = flag.Int("tune-min-samples", 8, "per-variant samples required before the tuner may promote")
		snapEvery    = flag.Int("snapshot-every", 64, "compact the WAL into a snapshot after this many registrations (<0 disables)")
		compactRatio = flag.Float64("compact-ratio", 0, "background overlay compaction when overlay nnz exceeds this fraction of base nnz (0 = default 0.25, negative disables the ratio trigger)")
		compactCost  = flag.Float64("compact-cost", 0, "background overlay compaction when accumulated overlay-apply time exceeds this multiple of one re-preparation (0 = default 1.0, negative disables the cost trigger)")
		fsync        = flag.Bool("fsync", true, "fsync every WAL append before acking a registration (disable only for throwaway data)")
		traceOut     = flag.String("trace", "", "write a Chrome trace of the serving session to this file on exit")
		reqRing      = flag.Int("reqtrace-ring", 512, "per-request tracing: keep the last N request records and answer /v1/trace/requests (0 disables; disabled requests cost nothing)")
		slowReq      = flag.Duration("slow", time.Second, "log a request-ID-correlated warning for requests slower than this (0 disables; needs -reqtrace-ring > 0)")
		logFormat    = flag.String("log-format", "text", "log format: text or json")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn, error")
		drainGrace   = flag.Duration("drain", 10*time.Second, "graceful-drain budget on SIGINT")
	)
	flag.Parse()

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		fatal(err)
	}

	var tr *trace.Tracer
	if *traceOut != "" {
		tr = trace.New(*threads+2, 1<<16)
		tr.SetEnabled(true)
		parallel.SetTracer(tr)
	}

	// serve.Config sentinel mapping: 0 means "default", negative means "no
	// queue at all" — translate the flag's -1=default / 0=none spelling.
	queueDepth := *queue
	switch {
	case queueDepth < 0:
		queueDepth = 0
	case queueDepth == 0:
		queueDepth = -1
	}
	cfg := serve.Config{
		Threads:         *threads,
		CacheBytes:      int64(*cacheMB) << 20,
		BatchWindow:     *batchWindow,
		MaxBatchK:       *maxBatchK,
		MaxK:            *maxK,
		MaxInFlight:     *maxInFlight,
		QueueDepth:      queueDepth,
		DefaultDeadline: *deadline,
		Tracer:          tr,
		ReqTraceRing:    *reqRing,
		SlowRequest:     *slowReq,
		Log:             logger,
		DataDir:         *dataDir,
		SnapshotEvery:   *snapEvery,
		NoFsync:         !*fsync,
		CompactRatio:    *compactRatio,
		CompactCost:     *compactCost,
	}
	if *tuneOn {
		cfg.Tune = &tune.Config{Duty: *tuneDuty, MinSamples: *tuneMinSamp}
	}
	srv, err := serve.New(cfg)
	if err != nil {
		fatal(err)
	}
	defer srv.Close()

	var monitor *obs.Server
	if *metricsAddr != "" {
		monitor, err = obs.Serve(*metricsAddr, obs.ServerOpts{Pprof: true, Log: logger})
		if err != nil {
			fatal(err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	done := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			done <- err
			return
		}
		done <- nil
	}()
	logger.Info("spmmserve listening", "addr", ln.Addr().String(),
		"threads", *threads, "cache_mb", *cacheMB,
		"batch_window", batchWindow.String(), "metrics", *metricsAddr,
		"tune", *tuneOn)

	select {
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	case <-ctx.Done():
		logger.Info("draining", "grace", drainGrace.String())
		// Flip the drain flag first: requests racing the listener teardown
		// get a clean 503 + Retry-After instead of a connection reset.
		srv.Drain()
		shutCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			logger.Warn("drain incomplete", "err", err)
		}
		cancel()
		<-done
	}
	if monitor != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		monitor.Close(shutCtx)
		cancel()
	}
	if tr != nil {
		parallel.SetTracer(nil)
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		logger.Info("trace written", "path", *traceOut)
	}
	logger.Info("spmmserve stopped")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spmmserve:", err)
	os.Exit(1)
}
