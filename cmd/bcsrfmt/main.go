// Command bcsrfmt pre-formats a sparse matrix into BCSR and saves the
// result to a binary file the BCSR kernels can load directly — the interim
// tool the thesis describes in §6.3.2 to sidestep its slow formatter
// ("format the BCSR matrix into a given block configuration, and then save
// that to a file, which the BCSR kernels could quickly load and use").
//
// This suite's sorted two-pass formatter is fast, but the pre-formatted
// files remain useful for repeated runs on large matrices and for sharing
// block configurations.
//
// Examples:
//
//	bcsrfmt -in cant.mtx -b 4 -out cant.b4.bcsr
//	bcsrfmt -matrix cant -scale 0.1 -b 8 -out cant.b8.bcsr
//	bcsrfmt -check cant.b4.bcsr
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/formats"
	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/mmio"
)

func main() {
	var (
		in     = flag.String("in", "", "input MatrixMarket file")
		name   = flag.String("matrix", "", "or: registry matrix name")
		scale  = flag.Float64("scale", 0.05, "scale factor for registry matrices")
		block  = flag.Int("b", 4, "block size (square blocks)")
		out    = flag.String("out", "", "output BCSR file")
		check  = flag.String("check", "", "validate an existing BCSR file and print its properties")
		useMap = flag.Bool("mapbuilder", false, "use the thesis' original map-based formatter (slow path)")
	)
	flag.Parse()

	if *check != "" {
		b, err := formats.ReadBCSRFile[float64](*check)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %dx%d, %dx%d blocks, %d stored blocks, %d nonzeros, fill %.3f, %d bytes\n",
			*check, b.Rows, b.Cols, b.BR, b.BC, b.NumBlocks(), b.NNZ(), b.FillRatio(), b.Bytes())
		return
	}

	var m *matrix.COO[float64]
	var err error
	switch {
	case *in != "":
		m, err = mmio.ReadFile[float64](*in)
	case *name != "":
		m, _, err = gen.GenerateScaled(*name, *scale)
	default:
		fmt.Fprintln(os.Stderr, "bcsrfmt: one of -in, -matrix or -check is required")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		fatal(fmt.Errorf("-out is required"))
	}

	start := time.Now()
	var b *formats.BCSR[float64]
	if *useMap {
		b, err = formats.BCSRFromCOOMap(m, *block, *block)
	} else {
		b, err = formats.BCSRFromCOO(m, *block, *block)
	}
	if err != nil {
		fatal(err)
	}
	formatTime := time.Since(start)

	if err := formats.WriteBCSRFile(*out, b); err != nil {
		fatal(err)
	}
	fmt.Printf("formatted %d nonzeros into %d %dx%d blocks (fill %.3f) in %v -> %s (%d bytes)\n",
		m.NNZ(), b.NumBlocks(), b.BR, b.BC, b.FillRatio(), formatTime.Round(time.Microsecond), *out, b.Bytes())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bcsrfmt:", err)
	os.Exit(1)
}
