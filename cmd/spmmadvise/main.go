// Command spmmadvise recommends a sparse format for a matrix — the
// metric-driven format selection programme of the related work the thesis
// surveys (the "ELL ratio" rule and its learned descendants), backed by the
// suite's advisor. With -measure it also benchmarks the candidates and
// reports whether the recommendation survives contact with measurement.
//
// Examples:
//
//	spmmadvise -matrix torso1 -scale 0.05
//	spmmadvise -matrix path/to/matrix.mtx -env parallel -measure
//	spmmadvise -matrix cant -spy
//	spmmadvise -matrix cant -json | jq .environments[0].ranked[0]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/mmio"
)

func main() {
	var (
		name    = flag.String("matrix", "cant", "registry matrix name or path to a .mtx file")
		scale   = flag.Float64("scale", 0.05, "scale factor for registry matrices")
		env     = flag.String("env", "all", "environment: serial, parallel, gpu, or all")
		measure = flag.Bool("measure", false, "benchmark the candidate formats (serial/parallel only)")
		spy     = flag.Bool("spy", false, "print the sparsity pattern")
		threads = flag.Int("t", 8, "threads for -measure in the parallel environment")
		kArg    = flag.Int("k", 128, "k for -measure")
		asJSON  = flag.Bool("json", false, "emit the recommendation as machine-readable JSON (the advisor.Report schema the serving layer also returns)")
	)
	flag.Parse()

	m, err := load(*name, *scale)
	if err != nil {
		fatal(err)
	}
	f, err := advisor.Extract(m)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		emitJSON(*name, *env, f, m, *measure, *threads, *kArg)
		return
	}
	fmt.Printf("matrix %s: %dx%d, %d nonzeros\n", *name, f.Rows, f.Cols, f.NNZ)
	fmt.Printf("features: ratio %.1f, ell-overhead %.1fx, 4x4-block fill %.2f, density %.2g\n",
		f.Ratio, f.ELLOverhead, f.BCSRFill4, f.Density)
	fmt.Printf("row balance: max %d / avg %.1f nonzeros per row (ratio %.1f), gini %.2f\n",
		f.MaxRow, f.AvgRow, f.Ratio, f.Gini)
	sched := advisor.RecommendSchedule(f)
	fmt.Printf("schedule: %s — %s\n\n", sched.Format, sched.Reason)
	if *spy {
		if err := metrics.SpyPlot(os.Stdout, m, 72, 24); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	envs, err := selectEnvs(*env)
	if err != nil {
		fatal(err)
	}

	for _, e := range envs {
		fmt.Printf("%s:\n", e)
		for i, a := range advisor.Recommend(f, e) {
			marker := " "
			if i == 0 {
				marker = "*"
			}
			fmt.Printf("  %s %-5s %5.2f  %s\n", marker, a.Format, a.Score, a.Reason)
		}
		if *measure && e != advisor.GPUEnv {
			p := core.DefaultParams()
			p.Threads = *threads
			p.K = *kArg
			p.Reps = 3
			best, results, err := advisor.Measure(m, e, p, core.Options{})
			if err != nil {
				fatal(err)
			}
			fmt.Println("  measured:")
			for _, r := range results {
				fmt.Printf("    %-5s %9.1f MFLOPS\n", r.Format, r.MFLOPS)
			}
			fmt.Printf("  measured winner: %s\n", best)
		}
		fmt.Println()
	}
}

// selectEnvs maps the -env flag onto advisor environments.
func selectEnvs(env string) ([]advisor.Environment, error) {
	envs := []advisor.Environment{advisor.SerialCPU, advisor.ParallelCPU, advisor.GPUEnv}
	switch env {
	case "serial":
		return envs[:1], nil
	case "parallel":
		return envs[1:2], nil
	case "gpu":
		return envs[2:], nil
	case "all":
		return envs, nil
	default:
		return nil, fmt.Errorf("unknown environment %q", env)
	}
}

// measuredEnv is the optional -measure section of the JSON output.
type measuredEnv struct {
	Env     string        `json:"env"`
	Winner  string        `json:"winner"`
	Results []core.Result `json:"results"`
}

// jsonReport is the -json output: the shared advisor.Report (the same
// struct internal/serve returns in register responses) plus measured
// results when -measure ran.
type jsonReport struct {
	advisor.Report
	Measured []measuredEnv `json:"measured,omitempty"`
}

func emitJSON(name, env string, f advisor.Features, m *matrix.COO[float64], measure bool, threads, k int) {
	envs, err := selectEnvs(env)
	if err != nil {
		fatal(err)
	}
	out := jsonReport{Report: advisor.NewReport(name, f, envs)}
	if measure {
		for _, e := range envs {
			if e == advisor.GPUEnv {
				continue
			}
			p := core.DefaultParams()
			p.Threads = threads
			p.K = k
			p.Reps = 3
			best, results, err := advisor.Measure(m, e, p, core.Options{})
			if err != nil {
				fatal(err)
			}
			out.Measured = append(out.Measured, measuredEnv{Env: e.String(), Winner: best, Results: results})
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

func load(name string, scale float64) (*matrix.COO[float64], error) {
	if strings.HasSuffix(name, ".mtx") {
		return mmio.ReadFile[float64](name)
	}
	m, _, err := gen.GenerateScaled(name, scale)
	return m, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spmmadvise:", err)
	os.Exit(1)
}
