package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/studies"
)

func TestWriteCSVs(t *testing.T) {
	dir := t.TempDir()
	tb := metrics.NewTable("matrix", "mflops")
	tb.AddRow("cant", 123.0)
	sections := []studies.Section{
		{Title: "Study X (Fig 9.9): something / with ÷ odd chars", Table: tb},
		{Title: "second", Table: tb},
	}
	if err := writeCSVs(dir, "X", sections); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("wrote %d files, want 2", len(entries))
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "studyX_") || !strings.HasSuffix(name, ".csv") {
			t.Fatalf("bad file name %q", name)
		}
		if strings.ContainsAny(name, "/÷ ()") {
			t.Fatalf("unsafe characters in %q", name)
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "matrix,mflops") {
			t.Fatalf("csv content wrong: %q", data)
		}
	}
}

func TestWriteCSVsBadDir(t *testing.T) {
	// A file where the directory should be must fail cleanly.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocked")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	tb := metrics.NewTable("a")
	tb.AddRow("1")
	err := writeCSVs(blocker, "Y", []studies.Section{{Title: "t", Table: tb}})
	if err == nil {
		t.Fatal("writing into a file-as-directory must fail")
	}
}
