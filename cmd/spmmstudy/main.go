// Command spmmstudy regenerates the evaluation studies of the thesis
// (Chapter 5): Table 5.1 plus Studies 1 through 9, printing the data series
// behind every figure as aligned text tables.
//
// Usage:
//
//	spmmstudy -study all
//	spmmstudy -study 1,5,7 -scale 0.1 -reps 5
//	spmmstudy -study props -scale 1
//	spmmstudy -study 3.1 -matrices cant,torso1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/studies"
	"repro/internal/trace"
)

var unsafeChars = regexp.MustCompile(`[^a-zA-Z0-9._-]+`)

// writeCSVs stores each section as <dir>/study<id>_<n>_<slug>.csv — the CSV
// feed the thesis' plotting scripts consume.
func writeCSVs(dir, id string, sections []studies.Section) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, s := range sections {
		slug := unsafeChars.ReplaceAllString(strings.ToLower(s.Title), "_")
		if len(slug) > 60 {
			slug = slug[:60]
		}
		path := filepath.Join(dir, fmt.Sprintf("study%s_%02d_%s.csv", id, i, slug))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := s.Table.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	var (
		study    = flag.String("study", "all", "study id: props, 1, 2, 3, 3.1, 4, 5, 6, 7, 8, 9, mem, sched, or a comma list, or 'all'")
		scale    = flag.Float64("scale", 0.05, "matrix scale factor for CPU studies (0 < s <= 1)")
		gpuScale = flag.Float64("gpuscale", 0.02, "matrix scale factor for simulated-GPU studies")
		reps     = flag.Int("reps", 3, "timed repetitions per kernel")
		matrices = flag.String("matrices", "", "comma-separated matrix subset (default: all 14)")
		verify   = flag.Bool("verify", false, "verify every kernel result against the COO reference")
		quiet    = flag.Bool("quiet", false, "suppress progress notes on stderr")
		csvDir   = flag.String("csv", "", "also write each section as a CSV file into this directory")
		chart    = flag.Bool("chart", false, "render bar charts (the figures' shape) instead of tables")

		traceOut = flag.String("trace", "", "write a Chrome trace_event JSON of the study run to this file (open in chrome://tracing or https://ui.perfetto.dev)")
		traceSum = flag.Bool("trace-summary", false, "print the per-phase time summary table after the studies")

		timeout   = flag.Duration("timeout", 0, "harness: per-benchmark timeout (0 disables)")
		retries   = flag.Int("retries", 0, "harness: extra attempts for transient failures")
		memBudget = flag.String("mem-budget", "", "harness: per-run format footprint budget, e.g. 512MiB")
		journal   = flag.String("journal", "", "harness: JSONL checkpoint journal path")
		jnlNoSync = flag.Bool("journal-nosync", false, "harness: skip the per-append journal fsync (faster, loses machine-crash durability)")
		resume    = flag.Bool("resume", false, "harness: replay runs already recorded in -journal")

		serveAddr = flag.String("serve", "", "serve /metrics (Prometheus), /healthz, /debug/vars and /debug/pprof on this address while the studies run, e.g. :9090")
		logFormat = flag.String("log-format", "text", "structured log format on stderr: text or json")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn or error")
	)
	flag.Parse()

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spmmstudy: %v\n", err)
		os.Exit(1)
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spmmstudy: %v\n", err)
		os.Exit(1)
	}

	if *serveAddr != "" {
		srv, err := obs.Serve(*serveAddr, obs.ServerOpts{Pprof: true, Log: logger})
		if err != nil {
			fmt.Fprintf(os.Stderr, "spmmstudy: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Close(ctx)
		}()
	}

	cfg := studies.DefaultConfig()
	cfg.Scale = *scale
	cfg.GPUScale = *gpuScale
	cfg.Reps = *reps
	cfg.Verify = *verify
	if *matrices != "" {
		cfg.Matrices = strings.Split(*matrices, ",")
	}

	// Tracing: per-worker chunk spans come from the parallel package hook;
	// pipeline phase spans ride in via a Runner wrapper that stamps the
	// tracer onto every benchmark's Params.
	var tracer *trace.Tracer
	if *traceOut != "" || *traceSum {
		tracer = trace.New(parallel.MaxThreads()*2+2, 1<<15)
		tracer.SetEnabled(true)
		parallel.SetTracer(tracer)
		defer func() {
			parallel.SetTracer(nil)
			if *traceOut != "" {
				f, err := os.Create(*traceOut)
				if err == nil {
					err = tracer.WriteChromeTrace(f)
					if cerr := f.Close(); err == nil {
						err = cerr
					}
				}
				if err != nil {
					fmt.Fprintf(os.Stderr, "spmmstudy: trace: %v\n", err)
					return
				}
				fmt.Fprintf(os.Stderr, "spmmstudy: trace written to %s (%d spans)\n", *traceOut, tracer.Len())
			}
			if *traceSum {
				fmt.Println()
				if err := tracer.Summary().WriteTable(os.Stdout); err != nil {
					fmt.Fprintf(os.Stderr, "spmmstudy: %v\n", err)
				}
			}
		}()
	}

	// Any resilience flag routes every benchmark through the campaign
	// harness: panics become typed errors, transient failures retry,
	// over-budget formats degrade, and -journal/-resume checkpoint the run.
	var h *harness.Harness
	if *timeout > 0 || *retries > 0 || *memBudget != "" || *journal != "" || *resume {
		if *resume && *journal == "" {
			fmt.Fprintln(os.Stderr, "spmmstudy: -resume needs -journal to know what already ran")
			os.Exit(1)
		}
		budget := int64(0)
		if *memBudget != "" {
			var err error
			budget, err = harness.ParseBytes(*memBudget)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spmmstudy: %v\n", err)
				os.Exit(1)
			}
		}
		hcfg := harness.Config{
			Timeout: *timeout, Retries: *retries, MemBudget: budget,
			Journal: *journal, JournalNoSync: *jnlNoSync, Resume: *resume, Seed: 1, Trace: tracer,
		}
		if !*quiet {
			hcfg.Logger = logger
		}
		var err error
		h, err = harness.New(hcfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spmmstudy: %v\n", err)
			os.Exit(1)
		}
		defer h.Close()
		cfg.Runner = h.Runner()
	}

	if tracer != nil {
		// Stamp the tracer onto every benchmark's Params so the runner's
		// phase spans (prepare/warmup/calculate/verify) are recorded whether
		// or not the harness is in the loop.
		base := cfg.Runner
		cfg.Runner = func(kernelName string, opts core.Options, a *matrix.COO[float64],
			matrixName string, p core.Params) (core.Result, error) {
			p.Trace = tracer
			if base != nil {
				return base(kernelName, opts, a, matrixName, p)
			}
			k, err := core.New(kernelName, opts)
			if err != nil {
				return core.Result{}, err
			}
			return core.Run(k, a, matrixName, p)
		}
	}

	ids := studies.All()
	if *study != "all" {
		ids = strings.Split(*study, ",")
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		sections, err := studies.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spmmstudy: study %s: %v\n", id, err)
			os.Exit(1)
		}
		render := studies.Render
		if *chart {
			render = studies.RenderCharts
		}
		if err := render(os.Stdout, sections); err != nil {
			fmt.Fprintf(os.Stderr, "spmmstudy: %v\n", err)
			os.Exit(1)
		}
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, id, sections); err != nil {
				fmt.Fprintf(os.Stderr, "spmmstudy: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Println()
		if !*quiet {
			logger.Info("study done", "study", id,
				"elapsed", time.Since(start).Round(time.Millisecond).String())
		}
	}
	if h != nil && !*quiet {
		fmt.Fprintln(os.Stderr, "[harness counters]")
		for _, cv := range h.Counters().Snapshot() {
			fmt.Fprintf(os.Stderr, "  %-10s %d\n", cv.Name, cv.Value)
		}
	}
}
