package main

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/matrix"
	"repro/internal/serve"
)

// Mutation traffic: spmmload interleaves insert/update/delete batches with
// the multiply load and bitwise-verifies every multiply against a
// client-side reference for the exact epoch the server answered at
// (X-Spmm-Epoch). The whole batch sequence is generated up front from a
// fixed seed, so every epoch's merged content is known before the run
// starts — a multiply racing a mutation can always be checked against the
// state its epoch names, never a guess.

// mutationPlan is the precomputed mutation schedule: batch b creates epoch
// b+1, and states[e] is the full merged content at epoch e (states[0] is
// the registered base).
type mutationPlan struct {
	batches [][]serve.MutateOp
	states  []*matrix.COO[float64]
}

// buildMutationPlan generates `batches` deterministic op batches over base
// and folds each through the same delta-overlay code path the server runs,
// yielding the canonical merged content at every epoch.
func buildMutationPlan(base *matrix.COO[float64], batches, opsPer int, seed int64) (*mutationPlan, error) {
	rng := rand.New(rand.NewSource(seed))
	plan := &mutationPlan{states: []*matrix.COO[float64]{base}}
	cur := base
	for b := 0; b < batches; b++ {
		ops := make([]serve.MutateOp, opsPer)
		dops := make([]delta.Op, opsPer)
		for i := range ops {
			row := int32(rng.Intn(base.Rows))
			col := int32(rng.Intn(base.Cols))
			del := rng.Float64() < 0.2
			var val float64
			if !del {
				val = rng.NormFloat64()
			}
			ops[i] = serve.MutateOp{Row: row, Col: col, Val: val, Del: del}
			dops[i] = delta.Op{Row: row, Col: col, Val: val, Del: del}
		}
		ov, err := (*delta.Overlay)(nil).Extend(cur, dops)
		if err != nil {
			return nil, fmt.Errorf("spmmload: batch %d: %w", b+1, err)
		}
		if ov.NNZ() > 0 {
			cur = ov.Merge()
		}
		plan.batches = append(plan.batches, ops)
		plan.states = append(plan.states, cur)
	}
	return plan, nil
}

// epochVerifier holds one lazily prepared serial reference kernel per
// epoch. The bitwise contract makes csr-serial the universal reference:
// whatever format/variant the server dispatched, the bits must equal the
// serial per-row column-ascending accumulation over the epoch's merged
// content.
type epochVerifier struct {
	plan *mutationPlan
	k    int

	mu    sync.Mutex
	kerns map[int64]core.Kernel
	refC  *matrix.Dense[float64]
	// skipped counts multiplies whose epoch was ahead of the plan (another
	// client mutating the same matrix) — nothing to verify against.
	skipped int64
}

func newEpochVerifier(plan *mutationPlan, rows, k int) *epochVerifier {
	return &epochVerifier{
		plan:  plan,
		k:     k,
		kerns: map[int64]core.Kernel{},
		refC:  matrix.NewDense[float64](rows, k),
	}
}

// verify checks c against the reference for the given epoch; it returns
// (mismatch magnitude, true) when a reference exists, or (0, false) when
// the epoch is outside the plan.
func (v *epochVerifier) verify(epoch int64, b *matrix.Dense[float64], c *matrix.Dense[float64]) (float64, bool, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if epoch < 0 || epoch >= int64(len(v.plan.states)) {
		v.skipped++
		return 0, false, nil
	}
	kern, ok := v.kerns[epoch]
	if !ok {
		var err error
		kern, err = core.New("csr-serial", core.Options{})
		if err != nil {
			return 0, false, err
		}
		p := core.DefaultParams()
		p.K = v.k
		if err := kern.Prepare(v.plan.states[epoch], p); err != nil {
			return 0, false, err
		}
		v.kerns[epoch] = kern
	}
	p := core.DefaultParams()
	p.K = v.k
	if err := kern.Calculate(b, v.refC, p); err != nil {
		return 0, false, err
	}
	diff, _ := c.MaxAbsDiff(v.refC)
	return diff, true, nil
}

// mutateStats is the mutator goroutine's outcome.
type mutateStats struct {
	sent      int
	latencies []time.Duration
	lastEpoch int64
	lastHash  string
	err       error
}

// runMutator sends the plan's batches one at a time (serialized — the
// epoch sequence is the correctness anchor), pacing batch b to land after
// roughly b/rate multiplies have been issued. issued reports how many
// multiplies the workers have started; done closes when the multiply load
// finishes, after which the mutator drains its remaining batches
// back-to-back so the run always ends at the plan's final epoch.
func runMutator(cl *serve.Client, id string, plan *mutationPlan, rate float64, issued func() int64, done <-chan struct{}) mutateStats {
	var st mutateStats
	pacing := true
	for b, ops := range plan.batches {
		for pacing && issued() < int64(float64(b)/rate) {
			select {
			case <-done:
				pacing = false
			case <-time.After(time.Millisecond):
			}
		}
		t0 := time.Now()
		resp, err := cl.Mutate(id, ops)
		if err != nil {
			st.err = fmt.Errorf("mutate batch %d: %w", b+1, err)
			return st
		}
		st.latencies = append(st.latencies, time.Since(t0))
		st.sent++
		if want := int64(b + 1); resp.Epoch != want {
			st.err = fmt.Errorf("mutate batch %d acked epoch %d, want %d (another writer?)", b+1, resp.Epoch, want)
			return st
		}
		st.lastEpoch, st.lastHash = resp.Epoch, resp.Hash
	}
	return st
}

// reportMutations prints the mutation-side summary: ack latency
// percentiles, the final epoch, and the compaction activity the server
// reported.
func reportMutations(st mutateStats, skipped int64, stats *serve.StatsResponse) {
	if st.sent == 0 {
		return
	}
	lat := append([]time.Duration(nil), st.latencies...)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) time.Duration {
		return lat[min(int(p*float64(len(lat))), len(lat)-1)]
	}
	fmt.Printf("mutations: %d batches acked, final epoch %d, ack p50 %s  p99 %s  max %s\n",
		st.sent, st.lastEpoch,
		pct(0.50).Round(time.Microsecond), pct(0.99).Round(time.Microsecond),
		lat[len(lat)-1].Round(time.Microsecond))
	if skipped > 0 {
		fmt.Printf("mutations: %d responses at epochs outside the local plan (unverified)\n", skipped)
	}
	if stats != nil && stats.Delta != nil {
		d := stats.Delta
		fmt.Printf("server delta: %d mutations (%d ops), %d matrices dirty (%d overlay nnz), %d compactions (%d failed)\n",
			d.Mutations, d.Ops, d.Mutated, d.OverlayNNZ, d.Compactions, d.CompactionErrors)
	}
}
