// Command spmmload drives a live spmmserve endpoint: it registers a matrix,
// fires concurrent multiply requests through internal/serve's client
// library, verifies every response bitwise against a local serial kernel of
// the server-chosen format, and reports latency percentiles, throughput,
// cache-hit and batching behaviour, and shed counts.
//
// Examples:
//
//	spmmload -addr http://127.0.0.1:8080 -matrix cant -scale 0.05 -workers 8 -n 200
//	spmmload -addr http://127.0.0.1:8080 -mtx path/to/matrix.mtx -k 64
//	spmmload -addr http://127.0.0.1:8080 -matrix torso1 -scale 0.02 -deadline 100ms
//	spmmload -addr http://127.0.0.1:8080 -matrix cant -mutate-rate 0.1 -n 500
//
// With -mutate-rate > 0, spmmload interleaves insert/update/delete batches
// with the multiply load (one batch per 1/rate multiplies, serialized),
// verifies every multiply bitwise against a client-side reference for the
// exact epoch the server answered at (X-Spmm-Epoch), and reports mutation
// ack latency percentiles plus the compactions the server performed.
//
// -addr also accepts a comma-separated endpoint list; requests round-robin
// across them and the matrix registers on every endpoint first (content
// addressing makes that idempotent). When the endpoint is an spmmrouter,
// the report breaks successes down by the replica that served each one
// (X-Spmm-Replica) and appends the router's /v1/cluster summary.
//
// Against an endpoint with request tracing on (-reqtrace-ring), every
// response carries X-Spmm-Request-Id and an X-Spmm-Timing phase breakdown;
// the report then adds per-phase p50/p90/p99 (where server time went:
// queue, prepare, batch wait, kernel, respond) and names the slowest
// request IDs for follow-up against /v1/trace/requests.
//
// Exit status is non-zero when any verified response mismatches or every
// request failed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/kernels"
	"repro/internal/matrix"
	"repro/internal/mmio"
	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "spmmserve or spmmrouter base URL (comma-separate several to round-robin)")
		name     = flag.String("matrix", "cant", "generator-registry matrix name")
		scale    = flag.Float64("scale", 0.05, "generator scale factor")
		mtxPath  = flag.String("mtx", "", "MatrixMarket file to upload instead of a generator spec")
		kArg     = flag.Int("k", 32, "dense columns per multiply request")
		workers  = flag.Int("workers", 8, "concurrent client workers")
		requests = flag.Int("n", 200, "total multiply requests")
		deadline = flag.Duration("deadline", 0, "per-request deadline (0 = server default)")
		verify   = flag.Bool("verify", true, "verify responses bitwise against a local serial kernel")
		retries  = flag.Int("retries", 0, "retries per request on 429/503 (capped exponential backoff + jitter, honoring Retry-After)")
		retryCon = flag.Bool("retry-conn", false, "also retry transport errors — rides out a server crash-and-restart window")
		mutRate  = flag.Float64("mutate-rate", 0, "mutation batches per multiply (0.1 = one batch per ten multiplies; 0 disables mutation traffic)")
		mutBatch = flag.Int("mutate-batch", 8, "insert/update/delete ops per mutation batch")
	)
	flag.Parse()

	var clients []*serve.Client
	for _, a := range strings.Split(*addr, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		c := serve.NewClient(strings.TrimRight(a, "/"))
		c.MaxAttempts = *retries + 1
		c.RetryConnErrors = *retryCon
		clients = append(clients, c)
	}
	if len(clients) == 0 {
		fatal(fmt.Errorf("no endpoint in -addr %q", *addr))
	}
	client := clients[0]

	req := serve.RegisterRequest{Name: *name, Scale: *scale}
	var local *matrix.COO[float64]
	var err error
	if *mtxPath != "" {
		data, rerr := os.ReadFile(*mtxPath)
		if rerr != nil {
			fatal(rerr)
		}
		req = serve.RegisterRequest{MTX: string(data)}
		local, err = mmio.ReadCOO[float64](strings.NewReader(string(data)))
	} else {
		local, _, err = gen.GenerateScaled(*name, *scale)
	}
	if err != nil {
		fatal(err)
	}

	reg, err := client.Register(req)
	if err != nil {
		fatal(err)
	}
	// Further endpoints register the same matrix; content addressing makes
	// this idempotent and cross-checks that every endpoint hashed the same
	// input.
	for _, c := range clients[1:] {
		other, err := c.Register(req)
		if err != nil {
			fatal(err)
		}
		if other.ID != reg.ID {
			fatal(fmt.Errorf("endpoint %s registered %s, endpoint %s registered %s — different inputs",
				client.Base, reg.ID, c.Base, other.ID))
		}
	}
	fmt.Printf("registered %s: %dx%d, %d nnz, format %s (%s schedule), existed=%v\n",
		reg.ID, reg.Rows, reg.Cols, reg.NNZ, reg.Format, reg.Schedule, reg.Existed)
	if best := reg.Advice.Best(advisor.ParallelCPU); best.Format != "" {
		fmt.Printf("advisor: %s — %s\n", best.Format, best.Reason)
	}

	// The local reference: the same canonical COO the server hashed,
	// prepared into the same format, multiplied serially. Parallel kernels
	// preserve per-row accumulation order, so server results must match
	// bitwise.
	var ref core.Kernel
	if *verify {
		serve.Canonicalize(local)
		if got := serve.ContentID(local); got != reg.ID {
			fatal(fmt.Errorf("local matrix hashes to %s but server registered %s — different inputs", got, reg.ID))
		}
		switch {
		case *mutRate > 0:
			// Mutation mode verifies per epoch below; no base reference.
		case reg.Epoch > 0:
			// The server's content has drifted from the registered base via
			// mutations; the local base is no longer the truth to check.
			fmt.Printf("note: matrix is at mutation epoch %d; base-content verification disabled\n", reg.Epoch)
		default:
			ref, err = core.New(reg.Format+"-serial", core.Options{})
			if err != nil {
				fatal(err)
			}
			p := core.DefaultParams()
			p.BlockSize = reg.Block
			p.K = *kArg
			if err := ref.Prepare(local, p); err != nil {
				fatal(err)
			}
		}
	}

	// Mutation mode: precompute the whole batch schedule and every epoch's
	// merged content, so each multiply verifies against the exact state its
	// X-Spmm-Epoch names. The sequence only lines up from a clean epoch 0.
	var mutPlan *mutationPlan
	var mutVerify *epochVerifier
	if *mutRate > 0 {
		if reg.Epoch > 0 {
			fatal(fmt.Errorf("matrix already at mutation epoch %d on the server; mutation mode needs a fresh state", reg.Epoch))
		}
		if !*verify {
			serve.Canonicalize(local)
		}
		batches := int(float64(*requests) * *mutRate)
		if batches < 1 {
			batches = 1
		}
		mutPlan, err = buildMutationPlan(local, batches, *mutBatch, 424242)
		if err != nil {
			fatal(err)
		}
		if *verify {
			mutVerify = newEpochVerifier(mutPlan, reg.Rows, *kArg)
		}
		fmt.Printf("mutating: %d batches of %d ops interleaved with the load (one per ~%.0f multiplies)\n",
			batches, *mutBatch, 1 / *mutRate)
	}

	var (
		mu         sync.Mutex
		latencies  []time.Duration
		mismatches int64
		sheds      int64
		failures   int64
		hits       int64
		batched    int64
		maxWidth   int64
		next       atomic.Int64
		// variants counts responses per executing kernel variant; more than
		// one entry means the tuner promoted mid-run. ordered keeps each
		// request's latency at its issue index so the steady-state (last
		// quarter) p50 can be compared against the warm-up (first quarter).
		variants = map[string]int64{}
		ordered  = make([]time.Duration, *requests)
		// byReplica counts successes per serving replica (X-Spmm-Replica);
		// empty against a plain spmmserve, populated through a router.
		byReplica = map[string]int64{}
		// phaseMs collects the server's per-phase breakdown (X-Spmm-Timing)
		// per response; empty when the endpoint runs with tracing disabled.
		phaseMs = map[string][]float64{}
		// tracked pairs each traced response's request ID with its e2e
		// latency so the report can name the slowest requests — the IDs to
		// feed back into /v1/trace/requests and the stitched Chrome export.
		tracked []requestObs
	)
	refC := matrix.NewDense[float64](reg.Rows, *kArg)
	start := time.Now()

	// The mutator runs beside the workers, paced off the multiply issue
	// counter; after the load drains it sends any remaining batches so the
	// run always ends at the plan's final epoch.
	var mutSt mutateStats
	loadDone := make(chan struct{})
	var mutWG sync.WaitGroup
	if mutPlan != nil {
		mutWG.Add(1)
		go func() {
			defer mutWG.Done()
			mutSt = runMutator(client, reg.ID, mutPlan, *mutRate,
				func() int64 { return next.Load() }, loadDone)
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(*requests) {
					return
				}
				b := matrix.NewDenseRand[float64](reg.Cols, *kArg, 1000+i)
				t0 := time.Now()
				res, err := clients[i%int64(len(clients))].Multiply(reg.ID, reg.Rows, b, *kArg, *deadline)
				lat := time.Since(t0)
				if err != nil {
					if se, ok := err.(*serve.StatusError); ok && se.Overloaded() {
						atomic.AddInt64(&sheds, 1)
					} else {
						atomic.AddInt64(&failures, 1)
						fmt.Fprintf(os.Stderr, "spmmload: request %d: %v\n", i, err)
					}
					continue
				}
				if res.CacheHit {
					atomic.AddInt64(&hits, 1)
				}
				if res.BatchWidth > 1 {
					atomic.AddInt64(&batched, 1)
				}
				for {
					old := atomic.LoadInt64(&maxWidth)
					if int64(res.BatchWidth) <= old || atomic.CompareAndSwapInt64(&maxWidth, old, int64(res.BatchWidth)) {
						break
					}
				}
				mu.Lock()
				latencies = append(latencies, lat)
				ordered[i] = lat
				if res.Variant != "" {
					variants[res.Variant]++
				}
				if res.Replica != "" {
					byReplica[res.Replica]++
				}
				for _, p := range res.Timing.Phases {
					phaseMs[p.Phase] = append(phaseMs[p.Phase], p.Ms)
				}
				if res.RequestID != "" {
					tracked = append(tracked, requestObs{id: res.RequestID, lat: lat, replica: res.Replica})
				}
				if mutVerify != nil {
					// Epoch-addressed reference: the server names which
					// mutation state it computed (X-Spmm-Epoch); the bitwise
					// contract makes csr-serial over that epoch's merged
					// content the universal truth.
					diff, checked, verr := mutVerify.verify(res.Epoch, b, res.C)
					if verr != nil {
						fatal(verr)
					}
					if checked && diff != 0 {
						atomic.AddInt64(&mismatches, 1)
						fmt.Fprintf(os.Stderr, "spmmload: request %d: epoch %d result differs from reference by %g\n",
							i, res.Epoch, diff)
					}
				} else if ref != nil {
					// Serial reference under the same lock: one scratch C,
					// and the serial rep keeps the client honest about what
					// the server actually computed.
					p := core.DefaultParams()
					p.BlockSize = reg.Block
					p.K = *kArg
					if err := ref.Calculate(b, refC, p); err != nil {
						fatal(err)
					}
					if diff, _ := res.C.MaxAbsDiff(refC); diff != 0 {
						atomic.AddInt64(&mismatches, 1)
						fmt.Fprintf(os.Stderr, "spmmload: request %d: result differs from serial %s by %g\n",
							i, reg.Format, diff)
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(loadDone)
	mutWG.Wait()
	elapsed := time.Since(start)

	ok := len(latencies)
	fmt.Printf("\n%d requests in %.2fs: %d ok, %d shed (429), %d failed\n",
		*requests, elapsed.Seconds(), ok, sheds, failures)
	var attempts, retried int64
	for _, c := range clients {
		attempts += c.Attempts()
		retried += c.Retries()
	}
	fmt.Printf("attempts %d (%d retried) over %d calls\n", attempts, retried, attempts-retried)
	if len(byReplica) > 0 {
		names := make([]string, 0, len(byReplica))
		for r := range byReplica {
			names = append(names, r)
		}
		sort.Strings(names)
		parts := make([]string, 0, len(names))
		for _, r := range names {
			parts = append(parts, fmt.Sprintf("%s:%d", r, byReplica[r]))
		}
		fmt.Printf("served by: %s\n", strings.Join(parts, "  "))
	}
	if ok > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pct := func(p float64) time.Duration {
			return latencies[min(int(p*float64(ok)), ok-1)]
		}
		flops := kernels.SpMMFlops(reg.NNZ, *kArg) * float64(ok)
		fmt.Printf("latency p50 %s  p90 %s  p99 %s  max %s\n",
			pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
			pct(0.99).Round(time.Microsecond), latencies[ok-1].Round(time.Microsecond))
		fmt.Printf("throughput %.1f req/s, %.1f MFLOPS aggregate\n",
			float64(ok)/elapsed.Seconds(), flops/elapsed.Seconds()/1e6)
		fmt.Printf("cache hits %d/%d, batched responses %d (max width %d)\n",
			hits, ok, batched, maxWidth)
		reportPhases(phaseMs)
		reportSlowest(client.Base, tracked)

		// Per-variant counts and warm-up vs steady-state latency: with the
		// tuner on, a promotion shows up as a variant change mid-run and
		// (when the tuner found a faster arm) a lower steady-state p50.
		if len(variants) > 0 {
			names := make([]string, 0, len(variants))
			for v := range variants {
				names = append(names, v)
			}
			sort.Strings(names)
			parts := make([]string, 0, len(names))
			for _, v := range names {
				parts = append(parts, fmt.Sprintf("%s:%d", v, variants[v]))
			}
			fmt.Printf("variants: %s\n", strings.Join(parts, "  "))
			if len(variants) > 1 {
				fmt.Printf("promotion observed: %d variants served this run\n", len(variants))
			}
		}
		quarterP50 := func(lats []time.Duration) time.Duration {
			var got []time.Duration
			for _, l := range lats {
				if l > 0 {
					got = append(got, l)
				}
			}
			if len(got) == 0 {
				return 0
			}
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			return got[len(got)/2]
		}
		q := *requests / 4
		if q > 0 {
			firstP50 := quarterP50(ordered[:q])
			steadyP50 := quarterP50(ordered[len(ordered)-q:])
			if firstP50 > 0 && steadyP50 > 0 {
				fmt.Printf("warm-up p50 %s -> steady p50 %s (%+.1f%%)\n",
					firstP50.Round(time.Microsecond), steadyP50.Round(time.Microsecond),
					100*(float64(steadyP50)-float64(firstP50))/float64(firstP50))
			}
			if steadyP50 > 0 {
				// Machine-parseable: scripts/bench.sh tune-compare greps it.
				fmt.Printf("steady p50_us %d\n", steadyP50.Microseconds())
			}
		}
	}
	var serverStats *serve.StatsResponse
	if stats, err := client.Stats(); err == nil {
		serverStats = stats
		fmt.Printf("server: %d multiplies over %d dispatches, cache %d/%d prepared (%d prepares, %d evictions), shed %d\n",
			stats.Multiplies, stats.Batches, stats.Cache.Entries, stats.Matrices,
			stats.Cache.Prepares, stats.Cache.Evictions, stats.Shed)
	}
	if mutPlan != nil {
		var skipped int64
		if mutVerify != nil {
			skipped = mutVerify.skipped
		}
		reportMutations(mutSt, skipped, serverStats)
	}
	// Against a router, /v1/cluster exists and summarizes the fleet; a plain
	// spmmserve 404s and the line is simply omitted.
	if cs, err := fetchClusterStats(client.Base); err == nil {
		fmt.Printf("cluster: ring %v, %d matrices, failovers %d, spillovers %d, replications %d, moves %d, ejects %d\n",
			cs.Ring, cs.Matrices, cs.Failovers, cs.Spillovers, cs.Replications, cs.Moves, cs.Ejects)
		fmt.Printf("cluster health: %d probe rounds, %d probe failures, %d readmits\n",
			cs.ProbeRounds, cs.ProbeFailures, cs.Readmits)
		for _, rs := range cs.Replicas {
			state := "up"
			if rs.Down {
				state = "DOWN"
			}
			fmt.Printf("cluster[%s]: %s (for %s), %d matrices, %d proxied, %d errors, %d failover serves, %d consecutive probe fails\n",
				rs.Name, state, (time.Duration(rs.SinceStateChangeSec * float64(time.Second))).Round(time.Second),
				rs.Matrices, rs.Proxied, rs.Errors, rs.Failovers, rs.ProbeFails)
		}
	}
	if ts, err := client.Tune(); err == nil && ts.Enabled {
		fmt.Printf("tuner: %d trials, %d promotions, %d rejects (%d dropped, %d stale)\n",
			ts.Trials, ts.Promotions, ts.Rejects, ts.Dropped, ts.Stale)
		for _, m := range ts.Matrices {
			if m.ID != reg.ID {
				continue
			}
			fmt.Printf("tuner[%s]: incumbent %s (plan v%d), %d arms measured, settled=%v\n",
				m.ID, m.Incumbent, m.PlanVersion, len(m.Arms), m.Settled)
			for _, pr := range m.History {
				fmt.Printf("  promoted %s -> %s (p50 %.0fus -> %.0fus at trial %d)\n",
					pr.From, pr.To, pr.FromP50Micros, pr.ToP50Micros, pr.Trials)
			}
		}
	}
	if *verify {
		refName := reg.Format
		if mutVerify != nil {
			refName = "csr (per-epoch merged reference)"
		}
		if mismatches > 0 {
			fatal(fmt.Errorf("%d responses mismatched the serial %s kernel", mismatches, refName))
		}
		fmt.Printf("verified: all %d responses bitwise-identical to serial %s\n", ok, refName)
	}
	if mutSt.err != nil {
		fatal(mutSt.err)
	}
	if ok == 0 && *requests > 0 {
		fatal(fmt.Errorf("no request succeeded"))
	}
}

// requestObs pairs one traced response's request ID with its observed
// end-to-end latency.
type requestObs struct {
	id      string
	lat     time.Duration
	replica string
}

// phaseOrder lists the request phases in pipeline order for the per-phase
// report; phases outside the list print after it, alphabetically.
var phaseOrder = []string{"queue", "load", "prepare", "batch", "kernel", "respond"}

// reportPhases prints per-phase latency percentiles from the X-Spmm-Timing
// breakdowns — where each request's time actually went, server-side.
func reportPhases(phaseMs map[string][]float64) {
	if len(phaseMs) == 0 {
		return
	}
	rank := map[string]int{}
	for i, p := range phaseOrder {
		rank[p] = i
	}
	names := make([]string, 0, len(phaseMs))
	for p := range phaseMs {
		names = append(names, p)
	}
	sort.Slice(names, func(i, j int) bool {
		ri, iOK := rank[names[i]]
		rj, jOK := rank[names[j]]
		switch {
		case iOK && jOK:
			return ri < rj
		case iOK:
			return true
		case jOK:
			return false
		default:
			return names[i] < names[j]
		}
	})
	fmt.Printf("server phases (ms):\n")
	for _, p := range names {
		samples := phaseMs[p]
		sort.Float64s(samples)
		pct := func(f float64) float64 {
			return samples[min(int(f*float64(len(samples))), len(samples)-1)]
		}
		fmt.Printf("  %-8s p50 %8.3f  p90 %8.3f  p99 %8.3f  (%d samples)\n",
			p, pct(0.50), pct(0.90), pct(0.99), len(samples))
	}
}

// reportSlowest names the slowest traced requests — their IDs key the
// server's /v1/trace/requests ring and, through a router, the stitched
// /v1/trace/requests/{rid}/chrome export.
func reportSlowest(base string, tracked []requestObs) {
	if len(tracked) == 0 {
		return
	}
	sort.Slice(tracked, func(i, j int) bool { return tracked[i].lat > tracked[j].lat })
	n := min(3, len(tracked))
	fmt.Printf("slowest requests:\n")
	for _, obs := range tracked[:n] {
		where := ""
		if obs.replica != "" {
			where = " on " + obs.replica
		}
		fmt.Printf("  %s  %s%s\n", obs.lat.Round(time.Microsecond), obs.id, where)
	}
	fmt.Printf("  inspect: curl '%s/v1/trace/requests?id=<rid>'\n", base)
}

// fetchClusterStats pulls the router's cluster summary; any error (a plain
// spmmserve has no /v1/cluster) just suppresses the report line.
func fetchClusterStats(base string) (*cluster.Stats, error) {
	resp, err := http.Get(base + "/v1/cluster")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/v1/cluster returned %d", resp.StatusCode)
	}
	var cs cluster.Stats
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		return nil, err
	}
	return &cs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spmmload:", err)
	os.Exit(1)
}
