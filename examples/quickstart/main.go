// Quickstart: generate a matrix, benchmark a couple of kernels on it, and
// print the suite's metrics — the 60-second tour of the public API.
package main

import (
	"fmt"
	"log"

	spmmbench "repro"
)

func main() {
	// One of the thesis' 14 evaluation matrices, synthesised at 10% of
	// its original size (the scale preserves the row-degree profile).
	a, props, err := spmmbench.GenerateMatrix("cant", 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matrix cant: %dx%d, %d nonzeros, max/avg row %.0f/%.1f (column ratio %.1f)\n",
		props.Rows, props.Cols, props.NNZ, float64(props.MaxRow), props.AvgRow, props.Ratio)

	// Benchmark parameters: the thesis defaults (§5.1) with fewer reps.
	p := spmmbench.DefaultParams()
	p.Reps = 3
	p.K = 128

	for _, name := range []string{"coo-serial", "csr-serial", "csr-omp", "bcsr-omp"} {
		k, err := spmmbench.NewKernel(name, spmmbench.KernelOptions{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := spmmbench.RunBenchmark(k, a, "cant", p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10.1f MFLOPS  (format %.2g s, calc %.2g s, verified=%v)\n",
			res.Kernel, res.MFLOPS, res.FormatSeconds, res.AvgSeconds, res.Verified)
	}
}
