// Batched SpMV: the introduction's motivating use case — "it is often
// necessary to multiply several vectors by the same matrix ... these
// vectors can be 'stacked' and multiplied with the sparse matrix as SpMM"
// (§2.3). This example multiplies the same sparse matrix by 64 right-hand
// sides both ways — 64 independent SpMV calls versus one SpMM with k=64 —
// verifies they agree, and compares throughput.
package main

import (
	"fmt"
	"log"
	"time"

	spmmbench "repro"

	"repro/internal/formats"
	"repro/internal/kernels"
	"repro/internal/matrix"
)

func main() {
	const batch = 64

	a, props, err := spmmbench.GenerateMatrix("2cubes_sphere", 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matrix: %dx%d with %d nonzeros; batching %d right-hand sides\n",
		props.Rows, props.Cols, props.NNZ, batch)

	csr := formats.CSRFromCOO(a)
	// The 64 vectors, stacked as the columns of a dense B.
	b := matrix.NewDenseRand[float64](a.Cols, batch, 7)

	// Way 1: one SpMV per vector. Each column must be gathered out of B
	// and scattered back into C — exactly the overhead batching removes.
	x := make([]float64, a.Cols)
	y := make([]float64, a.Rows)
	cSpMV := matrix.NewDense[float64](a.Rows, batch)
	start := time.Now()
	for v := 0; v < batch; v++ {
		for i := 0; i < a.Cols; i++ {
			x[i] = b.At(i, v)
		}
		if err := kernels.CSRSpMV(csr, x, y); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < a.Rows; i++ {
			cSpMV.Set(i, v, y[i])
		}
	}
	spmvTime := time.Since(start)

	// Way 2: one SpMM with k = batch.
	cSpMM := matrix.NewDense[float64](a.Rows, batch)
	start = time.Now()
	if err := kernels.CSRSerial(csr, b, cSpMM, batch); err != nil {
		log.Fatal(err)
	}
	spmmTime := time.Since(start)

	if !cSpMM.EqualTol(cSpMV, 1e-9) {
		log.Fatal("batched SpMM disagrees with repeated SpMV")
	}

	flops := kernels.SpMMFlops(a.NNZ(), batch)
	fmt.Printf("%d x SpMV: %8v  (%7.1f MFLOPS)\n", batch, spmvTime.Round(time.Microsecond),
		flops/spmvTime.Seconds()/1e6)
	fmt.Printf("1 x SpMM:  %8v  (%7.1f MFLOPS)\n", spmmTime.Round(time.Microsecond),
		flops/spmmTime.Seconds()/1e6)
	fmt.Printf("speedup from batching: %.2fx (results identical)\n",
		spmvTime.Seconds()/spmmTime.Seconds())
}
