// Format selection: the related-work chapter describes metrics-driven
// format choice — "one metric presented is the ELL ratio ... A high ratio
// would indicate that ELL is probably not the best format" (Chapter 3).
// This example runs the suite's advisor on matrices with very different
// row-degree profiles, then benchmarks all candidates to see whether the
// property-based recommendation survives contact with measurement — the
// thesis' own caveat ("the data in our table presents an overly simplistic
// view", §6.2).
package main

import (
	"fmt"
	"log"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/gen"
)

func main() {
	p := core.DefaultParams()
	p.Reps = 2
	p.Threads = 4
	p.K = 64

	for _, name := range []string{"af23560", "cant", "torso1", "bcsstk17"} {
		m, _, err := gen.GenerateScaled(name, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		f, err := advisor.Extract(m)
		if err != nil {
			log.Fatal(err)
		}
		ranked := advisor.Recommend(f, advisor.ParallelCPU)
		fmt.Printf("%-12s ratio %5.1f  ell-overhead %5.1fx  block-fill %.2f\n",
			name, f.Ratio, f.ELLOverhead, f.BCSRFill4)
		fmt.Printf("  advisor picks %s: %s\n", ranked[0].Format, ranked[0].Reason)

		best, results, err := advisor.Measure(m, advisor.ParallelCPU, p, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			marker := " "
			if r.Format == ranked[0].Format {
				marker = "*"
			}
			fmt.Printf("  %s %-5s %9.1f MFLOPS (format bytes %d)\n",
				marker, r.Format, r.MFLOPS, r.FormatBytes)
		}
		if best == ranked[0].Format {
			fmt.Printf("  => the recommendation matched the measurement\n\n")
		} else {
			fmt.Printf("  => measurement preferred %s — properties alone are not enough (§6.2)\n\n", best)
		}
	}
}
