// GNN feature propagation: the thesis' introduction motivates SpMM with
// machine learning and graph analytics (GE-SpMM and friends) — a graph
// neural network layer is exactly SpMM: X' = Â × X with a sparse adjacency
// matrix and a dense feature matrix. This example builds a scale-free
// R-MAT graph, normalises its adjacency, and runs two propagation layers,
// comparing the formats the advisor would choose for this very skewed
// workload.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/advisor"
	"repro/internal/formats"
	"repro/internal/gen"
	"repro/internal/kernels"
	"repro/internal/matrix"
	"repro/internal/metrics"
)

func main() {
	const (
		scale    = 12 // 4096 vertices
		features = 64
		threads  = 4
	)
	adj, err := gen.RMAT[float64](scale, 16, 0.57, 0.19, 0.19, 42)
	if err != nil {
		log.Fatal(err)
	}
	props := metrics.Compute(adj)
	fmt.Printf("R-MAT graph: %d vertices, %d edges, max degree %d, avg %.1f (ratio %.1f)\n",
		props.Rows, props.NNZ, props.MaxRow, props.AvgRow, props.Ratio)

	// Row-normalise the adjacency (mean aggregation: Â = D⁻¹A).
	counts := adj.RowCounts()
	for i := range adj.Vals {
		adj.Vals[i] /= float64(counts[adj.RowIdx[i]])
	}

	// What does the property-based advisor say about this graph?
	f, err := advisor.Extract(adj)
	if err != nil {
		log.Fatal(err)
	}
	pick := advisor.Recommend(f, advisor.ParallelCPU)[0]
	fmt.Printf("advisor: %s — %s\n\n", pick.Format, pick.Reason)

	// Two propagation layers: X1 = Â·X0, X2 = Â·X1.
	x0 := matrix.NewDenseRand[float64](adj.Cols, features, 7)
	x1 := matrix.NewDense[float64](adj.Rows, features)
	x2 := matrix.NewDense[float64](adj.Rows, features)

	csr := formats.CSRFromCOO(adj)
	if err := kernels.CSRParallel(csr, x0, x1, features, threads); err != nil {
		log.Fatal(err)
	}
	if err := kernels.CSRParallel(csr, x1, x2, features, threads); err != nil {
		log.Fatal(err)
	}

	// Sanity: mean aggregation keeps features bounded by the input range.
	lo, hi := x2.Data[0], x2.Data[0]
	for _, v := range x2.Data {
		lo, hi = min(lo, v), max(hi, v)
	}
	fmt.Printf("propagated %d features through 2 layers: output range [%.3f, %.3f]\n",
		features, lo, hi)

	// Compare the candidate formats on this workload.
	b := x0
	c := matrix.NewDense[float64](adj.Rows, features)
	run := func(label string, fn func() error) {
		secs, err := timeIt(fn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s %8.1f MFLOPS\n", label,
			metrics.MFLOPS(kernels.SpMMFlops(adj.NNZ(), features), secs))
	}
	fmt.Println("\nper-layer SpMM throughput by format:")
	run("coo-omp", func() error { return kernels.COOParallel(adj, b, c, features, threads) })
	run("csr-omp", func() error { return kernels.CSRParallel(csr, b, c, features, threads) })
	ell := formats.ELLFromCOO(adj, formats.RowMajor)
	run("ell-omp", func() error { return kernels.ELLParallel(ell, b, c, features, threads) })
	fmt.Printf("\n(ELL stores %d slots for %d edges — a %.1fx padding blow-up on this\n"+
		"power-law graph, the degradation the thesis' column-ratio metric predicts.)\n",
		ell.Stored(), adj.NNZ(), float64(ell.Stored())/float64(adj.NNZ()))
}

func timeIt(fn func() error) (float64, error) {
	const reps = 3
	best := 0.0
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if d := time.Since(start).Seconds(); i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}
