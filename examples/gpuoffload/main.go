// GPU offload: run SpMM kernels on the simulated SIMT device and inspect
// what the simulator reports — modelled time, the dominating roofline term,
// and the coalescing efficiency that separates the naive "offload-style"
// kernels from the tuned vendor-library ones (Study 7's mechanism, visible
// directly).
package main

import (
	"fmt"
	"log"

	"repro/internal/formats"
	"repro/internal/gen"
	"repro/internal/gpusim"
	"repro/internal/matrix"
	"repro/internal/vendorlib"
)

func main() {
	const k = 128
	a, _, err := gen.GenerateScaled("pdb1HYS", 0.05)
	if err != nil {
		log.Fatal(err)
	}
	b := matrix.NewDenseRand[float64](a.Cols, k, 3)
	c := matrix.NewDense[float64](a.Rows, k)
	csr := formats.CSRFromCOO(a)

	// A device scaled to the matrix keeps the occupancy regime of a
	// full-size run on the full H100-like device.
	dev, err := gpusim.NewDevice(gpusim.H100Like().ScaledDown(0.05))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device: %s (%d SMs, %.1f GHz)\n",
		dev.Config().Name, dev.Config().SMs, dev.Config().ClockGHz)
	fmt.Printf("matrix: pdb1HYS at 5%% scale, %d nonzeros, k=%d\n\n", a.NNZ(), k)

	flops := 2 * float64(a.NNZ()) * k
	show := func(label string, res gpusim.LaunchResult) {
		fmt.Printf("%-22s %9.3f ms  %8.0f MFLOPS  bound=%-7s  coalescing %.2f  (L1/L2/DRAM %d/%d/%d)\n",
			label, res.Seconds*1e3, flops/res.Seconds/1e6, res.Bound,
			res.Stats.CoalescingEfficiency(),
			res.Stats.L1Transactions, res.Stats.L2Transactions, res.Stats.DRAMTransactions)
	}

	res, err := gpusim.SpMMCOO(dev, a, b, c, k)
	if err != nil {
		log.Fatal(err)
	}
	show("offload COO (atomics)", res)

	res, err = gpusim.SpMMCSR(dev, csr, b, c, k)
	if err != nil {
		log.Fatal(err)
	}
	show("offload CSR", res)

	ell := formats.ELLFromCOO(a, formats.ColMajor)
	res, err = gpusim.SpMMELL(dev, ell, b, c, k)
	if err != nil {
		log.Fatal(err)
	}
	show("offload ELL (colmajor)", res)

	res, err = vendorlib.SpMMCOO(dev, a, b, c, k)
	if err != nil {
		log.Fatal(err)
	}
	show("vendor COO", res)

	res, err = vendorlib.SpMMCSR(dev, csr, b, c, k)
	if err != nil {
		log.Fatal(err)
	}
	show("vendor CSR", res)

	fmt.Println("\nThe vendor kernels' coalesced k-dimension mapping needs far fewer")
	fmt.Println("memory transactions per useful flop — the same structural reason")
	fmt.Println("cuSPARSE beat the OpenMP offload kernels in the thesis (§5.9).")
}
