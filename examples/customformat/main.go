// Custom format: the suite's first design goal is extensibility — "a custom
// format will simply extend the class, and re-implement the calculation and
// formatting functions" (§4.1). This example does exactly that through the
// public API: it implements the DIA (diagonal) format, which the suite does
// not ship, plugs it into the benchmark runner as a spmmbench.Kernel, and
// races it against CSR on the banded matrix dw4096 — DIA's ideal input —
// and on the scattered matrix 2cubes_sphere, where DIA should collapse.
package main

import (
	"fmt"
	"log"

	spmmbench "repro"
)

// diaKernel is the DIA (diagonal) sparse format: the matrix is stored as a
// set of dense diagonals, indexed by their offset from the main diagonal.
// Perfectly banded matrices need no padding; scattered matrices explode.
type diaKernel struct {
	rows, cols int
	offsets    []int
	// diags[d][i] is the element at (i, i+offsets[d]).
	diags [][]float64
}

func (d *diaKernel) Name() string         { return "dia-serial" }
func (d *diaKernel) Format() string       { return "dia" }
func (d *diaKernel) Mode() spmmbench.Mode { return spmmbench.ModeSerial }
func (d *diaKernel) Transposed() bool     { return false }

func (d *diaKernel) Prepare(a *spmmbench.COO, p spmmbench.Params) error {
	d.rows, d.cols = a.Rows, a.Cols
	index := map[int]int{}
	d.offsets = d.offsets[:0]
	d.diags = d.diags[:0]
	for i := range a.Vals {
		off := int(a.ColIdx[i]) - int(a.RowIdx[i])
		di, ok := index[off]
		if !ok {
			di = len(d.offsets)
			index[off] = di
			d.offsets = append(d.offsets, off)
			d.diags = append(d.diags, make([]float64, a.Rows))
		}
		d.diags[di][a.RowIdx[i]] += a.Vals[i]
	}
	return nil
}

func (d *diaKernel) Bytes() int {
	return len(d.offsets)*8 + len(d.offsets)*d.rows*8
}

func (d *diaKernel) Calculate(b, c *spmmbench.Dense, p spmmbench.Params) error {
	k := p.K
	for i := 0; i < d.rows; i++ {
		clear(c.Data[i*c.Stride : i*c.Stride+k])
	}
	for di, off := range d.offsets {
		diag := d.diags[di]
		for i := 0; i < d.rows; i++ {
			col := i + off
			if col < 0 || col >= d.cols {
				continue
			}
			v := diag[i]
			if v == 0 {
				continue
			}
			crow := c.Data[i*c.Stride : i*c.Stride+k]
			brow := b.Data[col*b.Stride : col*b.Stride+k]
			for j := range crow {
				crow[j] += v * brow[j]
			}
		}
	}
	return nil
}

func main() {
	p := spmmbench.DefaultParams()
	p.Reps = 3
	p.K = 64

	for _, name := range []string{"dw4096", "2cubes_sphere"} {
		a, props, err := spmmbench.GenerateMatrix(name, 0.2)
		if err != nil {
			log.Fatal(err)
		}
		dia := &diaKernel{}
		// The runner treats the custom format exactly like a built-in:
		// Prepare is timed as formatting, the result is verified against
		// the COO reference, MFLOPS come out the other end.
		diaRes, err := spmmbench.RunBenchmark(dia, a, name, p)
		if err != nil {
			log.Fatal(err)
		}
		csr, err := spmmbench.NewKernel("csr-serial", spmmbench.KernelOptions{})
		if err != nil {
			log.Fatal(err)
		}
		csrRes, err := spmmbench.RunBenchmark(csr, a, name, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%d nonzeros, %d distinct diagonals):\n",
			name, props.NNZ, len(dia.offsets))
		fmt.Printf("  dia-serial %9.1f MFLOPS  (%8d format bytes, verified=%v)\n",
			diaRes.MFLOPS, diaRes.FormatBytes, diaRes.Verified)
		fmt.Printf("  csr-serial %9.1f MFLOPS  (%8d format bytes, verified=%v)\n",
			csrRes.MFLOPS, csrRes.FormatBytes, csrRes.Verified)
		if diaRes.MFLOPS > csrRes.MFLOPS {
			fmt.Printf("  => DIA wins: the matrix is banded, diagonals are dense\n\n")
		} else {
			fmt.Printf("  => CSR wins: %d diagonals for %d nonzeros is mostly padding\n\n",
				len(dia.offsets), props.NNZ)
		}
	}
}
