package spmmbench

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	a, props, err := GenerateMatrix("bcsstk13", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if props.NNZ == 0 || props.Rows == 0 {
		t.Fatalf("empty properties: %+v", props)
	}
	k, err := NewKernel("csr-omp", KernelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.Reps = 1
	p.Threads = 2
	p.K = 16
	res, err := RunBenchmark(k, a, "bcsstk13", p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified || res.MFLOPS <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestFacadeFormatsAndIO(t *testing.T) {
	a, _, err := GenerateMatrix("dw4096", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	csr := ToCSR(a)
	if csr.NNZ() != a.NNZ() {
		t.Fatal("CSR conversion lost entries")
	}
	ell := ToELL(a)
	if ell.Stored() < a.NNZ() {
		t.Fatal("ELL stored fewer than nnz")
	}
	b, err := ToBCSR(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.FillRatio() <= 0 || b.FillRatio() > 1 {
		t.Fatalf("fill ratio %v", b.FillRatio())
	}
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != a.NNZ() {
		t.Fatal("MatrixMarket round trip lost entries")
	}
}

func TestFacadeGPUAndStudies(t *testing.T) {
	dev, err := NewGPUDevice(false)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := GenerateMatrix("dw4096", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	k, err := NewKernel("vendor-csr-gpu", KernelOptions{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.Reps = 1
	p.K = 32
	res, err := RunBenchmark(k, a, "dw4096", p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("gpu result not verified")
	}

	cfg := DefaultStudyConfig()
	cfg.Scale = 0.02
	cfg.GPUScale = 0.01
	cfg.Reps = 1
	cfg.Matrices = []string{"dw4096"}
	sections, err := RunStudy("props", cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderStudy(&buf, sections); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dw4096") {
		t.Fatal("study output missing matrix")
	}
}

func TestFacadeListings(t *testing.T) {
	if len(MatrixNames()) != 14 {
		t.Fatal("matrix names")
	}
	if len(KernelNames()) == 0 {
		t.Fatal("kernel names")
	}
	if len(StudyIDs()) != 13 {
		t.Fatalf("study ids: %v", StudyIDs())
	}
	if len(ArchProfiles()) != 2 {
		t.Fatal("arch profiles")
	}
}

func TestFacadeAdvisorAndSpMV(t *testing.T) {
	a, _, err := GenerateMatrix("dw4096", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ExtractFeatures(a)
	if err != nil {
		t.Fatal(err)
	}
	ranked := RecommendFormat(f, ParallelCPU)
	if len(ranked) != 4 || ranked[0].Format == "" {
		t.Fatalf("recommendations: %+v", ranked)
	}
	p := DefaultParams()
	p.Reps = 1
	p.Threads = 2
	best, results, err := MeasureFormats(a, SerialCPU, p, KernelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if best == "" || len(results) != 4 {
		t.Fatalf("measure: %q, %d results", best, len(results))
	}

	if len(SpMVKernelNames()) != 8 {
		t.Fatalf("spmv kernels: %v", SpMVKernelNames())
	}
	k, err := NewSpMVKernel("csr-spmv-serial")
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunSpMVBenchmark(k, a, "dw4096", p)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Fatal("spmv result not verified")
	}
}
