#!/usr/bin/env python3
"""Append representative measured excerpts from results/studies.txt to
EXPERIMENTS.md. Idempotent: wipes anything after the excerpt marker first."""
import re
import sys

MARKER = "## Measured excerpts (artifacts run)"

WANTED = [
    "Table 5.1: Properties of Each Matrix",
    "Study 1 (Figs 5.1/5.2): all formats, serial kernels, Arm",
    "Study 1 (Figs 5.1/5.2): all formats, omp kernels, Arm",
    "Study 1 (Fig 5.1): all formats, gpu kernels",
    "Study 3.1: matrices per format best at 72 threads, Arm",
    "Study 3.1: matrices per format best at 72 threads, x86",
    "Study 6 (Fig 5.13): all formats serial",
    "Study 7 (Figs 5.15/5.16): cuSparse-equivalent vs offload kernels, Arm",
    "Study 8 (Figs 5.17/5.18): transposing B, csr parallel, Arm",
    "Study 9 (Fig 5.19): manual optimisations (fixed k), serial",
    "Memory study (§6.3.5): format footprints",
]


def main():
    studies = open("results/studies.txt").read()
    sections = re.split(r"^## ", studies, flags=re.M)
    picked = []
    for want in WANTED:
        for sec in sections:
            if sec.startswith(want):
                picked.append("### " + sec.rstrip() + "\n")
                break
        else:
            print(f"warning: section not found: {want}", file=sys.stderr)

    exp = open("EXPERIMENTS.md").read()
    head, _, _ = exp.partition(MARKER)
    body = (
        head
        + MARKER
        + "\n\nSee `results/studies.txt` for the full output and `results/csv/` for"
        + "\nthe raw series. Representative excerpts:\n\n"
        + "\n".join("```\n" + p + "```\n" for p in picked)
    )
    open("EXPERIMENTS.md", "w").write(body)
    print(f"inserted {len(picked)} excerpts")


if __name__ == "__main__":
    main()
