#!/usr/bin/env bash
# check.sh — the pre-commit gate for the suite: static checks plus the
# race-sensitive packages (the threading substrate, the campaign harness,
# the lock-free tracer, and the metric registry) under the race detector.
#
#   ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test -race (parallel, harness, trace, obs, serve, delta, tune, clock, cluster) =="
# -short skips the subprocess e2e; the full chaos suite (torn WAL tails,
# corrupt snapshots, injected fsync/disk-full faults), the deterministic
# auto-tuner suite (promotion hysteresis, duty bounds, wrong-variant
# rejection), the mutation suite (1000-batch mutation stream against
# concurrent bitwise-verified multiplies with background compactions, plus
# the mutate/compact chaos tests), and the in-process cluster suite
# (hash-ring properties, scripted kill/hang failover, rebalance-without-
# drain — including a join mid-mutation-stream — and the request-trace
# propagation test — one rid across router attempt spans, replica phase
# spans, and the slow-request log, under scripted failover) run here
# under -race.
go test -race -short ./internal/parallel/... ./internal/harness/... ./internal/trace/... ./internal/obs/... ./internal/serve/... ./internal/delta/... ./internal/tune/... ./internal/clock/... ./internal/cluster/...

echo "== flake gate (serve + delta + cluster, shuffled, 3x) =="
# The time-sensitive suites run on injected clocks; repeated shuffled runs
# keep them honest about ordering and residual real-time assumptions.
go test -short -count=3 -shuffle=on ./internal/serve/... ./internal/delta/... ./internal/cluster/...

echo "== crash-recovery e2e (SIGKILL mid-load, restart, bitwise verify) =="
go test -run '^TestCrashRecoveryE2E$' -count=1 ./internal/serve

echo "== mutation crash e2e (SIGKILL mid-mutation-stream, restart, bitwise verify) =="
go test -run '^TestMutationCrashRecoveryE2E$' -count=1 ./internal/serve

echo "== cluster e2e (router + 3 replicas, SIGKILL a holder mid-load, rebalance) =="
go test -run '^TestClusterSmokeE2E$' -count=1 ./internal/cluster

echo "== bench smoke (1 iteration per bench) =="
go test -run '^$' -bench . -benchtime=1x . ./internal/serve ./internal/delta > /dev/null

echo "check.sh: all checks passed"
