#!/usr/bin/env bash
# bench.sh — the benchmark-regression flow: run the perf-baseline benches
# with -benchmem, snapshot the numbers as results/bench/BENCH_<date>.json,
# and gate against the previous baseline (exit 2 on regression).
#
#   ./scripts/bench.sh                   # full gate run
#   BENCHTIME=1x ./scripts/bench.sh      # smoke: one iteration per bench
#   TOLERANCE=0.10 ./scripts/bench.sh    # tighter ns/op gate
#   FILTER='^BenchmarkCalculate$' ./scripts/bench.sh
#   ./scripts/bench.sh tune-compare      # live A/B: advisor-only vs -tune
#   ./scripts/bench.sh cluster-compare   # live A/B: 1 replica vs 3 behind spmmrouter
#
# tune-compare mode spins up a real spmmserve twice — advisor-only, then
# with the online auto-tuner — drives each with spmmload on a skewed
# power-law matrix (torso1 by default), and compares the steady-state
# (last-quarter) p50 the loader reports. It fails (exit 2) if the tuned
# run's steady p50 regresses more than TUNE_TOL_PCT percent over the
# advisor-only run. Tunables: MATRIX, SCALE, N, WORKERS, PORT, TUNE_DUTY.
#
# The default filter covers the steady-state Calculate costs per format,
# the static-vs-balanced schedule race, the pooled-vs-spawn dispatch race,
# the tracer's disabled-path overhead (must stay 0 allocs/op and within the
# ns/op gate on CSR Calculate), the metric registry's overhead (both rows of
# BenchmarkObsOverhead must stay 0 allocs/op), the per-phase time mix, and
# the serving path (single-client cached-multiply latency plus batched vs
# unbatched concurrent throughput from internal/serve), and the durability
# tax (BenchmarkWALAppend: seal + write + fsync per registration record —
# the fsync row prices what crash-safe acks cost, the nosync row isolates
# the CPU side), and the dynamic-matrix path (BenchmarkOverlayApply: the
# empty row is the clean-multiply overlay check pinned at 0 allocs/op, the
# 1%/10% rows the dirty-matrix tax; BenchmarkCompaction the merge +
# re-prepare the cost model trades it against).
# Numbers are host-dependent: commit a refreshed baseline when the hardware
# or the kernels legitimately change.
set -euo pipefail
cd "$(dirname "$0")/.."

tune_compare() {
    local matrix=${MATRIX:-torso1} scale=${SCALE:-0.02} n=${N:-600}
    local workers=${WORKERS:-4} port=${PORT:-18321} duty=${TUNE_DUTY:-0.25}
    local tol_pct=${TUNE_TOL_PCT:-10} k=${K:-32}
    local bin; bin=$(mktemp -d)
    # shellcheck disable=SC2064
    trap "rm -rf '$bin'" EXIT

    echo "== build spmmserve + spmmload =="
    go build -o "$bin/spmmserve" ./cmd/spmmserve
    go build -o "$bin/spmmload" ./cmd/spmmload

    # run_side <label> [extra spmmserve flags...] — prints the loader output.
    run_side() {
        local label=$1; shift
        "$bin/spmmserve" -addr "127.0.0.1:$port" "$@" >"$bin/$label.serve.log" 2>&1 &
        local spid=$!
        # -retry-conn rides out server startup; verification stays on so a
        # promoted variant producing different bits fails the whole run.
        if ! "$bin/spmmload" -addr "http://127.0.0.1:$port" \
            -matrix "$matrix" -scale "$scale" -k "$k" \
            -workers "$workers" -n "$n" -retries 30 -retry-conn \
            | tee "$bin/$label.load.log"; then
            kill "$spid" 2>/dev/null || true
            wait "$spid" 2>/dev/null || true
            echo "tune-compare: $label load run failed" >&2
            exit 1
        fi
        kill -INT "$spid" 2>/dev/null || true
        wait "$spid" 2>/dev/null || true
    }

    echo "== advisor-only run ($matrix scale=$scale, n=$n) =="
    run_side advisor
    echo
    echo "== tuned run (-tune -tune-duty $duty) =="
    run_side tuned -tune -tune-duty "$duty" -tune-min-samples 4

    local base_p50 tuned_p50
    base_p50=$(awk '/^steady p50_us /{print $3}' "$bin/advisor.load.log")
    tuned_p50=$(awk '/^steady p50_us /{print $3}' "$bin/tuned.load.log")
    if [ -z "$base_p50" ] || [ -z "$tuned_p50" ]; then
        echo "tune-compare: missing 'steady p50_us' in loader output" >&2
        exit 1
    fi

    echo
    echo "== tune-compare verdict =="
    grep -E '^(variants:|promotion observed|tuner)' "$bin/tuned.load.log" || true
    echo "advisor-only steady p50: ${base_p50}us"
    echo "tuned        steady p50: ${tuned_p50}us"
    local limit=$(( base_p50 * (100 + tol_pct) / 100 ))
    if [ "$tuned_p50" -gt "$limit" ]; then
        echo "tune-compare: FAIL — tuned steady p50 ${tuned_p50}us exceeds advisor-only ${base_p50}us by more than ${tol_pct}% (limit ${limit}us)" >&2
        exit 2
    fi
    echo "tune-compare: OK — tuned steady p50 within ${tol_pct}% of advisor-only (or better)"
}

cluster_compare() {
    # Aggregate-throughput A/B: three distinct matrices driven concurrently
    # against (a) one spmmserve and (b) three spmmserve replicas behind
    # spmmrouter. Every server runs -t 1, so the cluster's edge is pure
    # horizontal scale: content addressing shards the three matrices across
    # the fleet. The >= CLUSTER_GAIN x gate (default 2.2) is enforced only
    # with >= 3 cores — on fewer, three replicas time-slice one CPU and the
    # run is recorded as informational.
    local n=${N:-150} workers=${WORKERS:-4} k=${K:-16}
    local gain=${CLUSTER_GAIN:-2.2} port=${PORT:-18331}
    local matrices=(dw4096 cant torso1) scales=(0.05 0.05 0.02)
    local dir=${DIR:-results/bench}
    local bin; bin=$(mktemp -d)
    # shellcheck disable=SC2064
    trap "rm -rf '$bin'" EXIT

    echo "== build spmmserve + spmmrouter + spmmload =="
    go build -o "$bin/spmmserve" ./cmd/spmmserve
    go build -o "$bin/spmmrouter" ./cmd/spmmrouter
    go build -o "$bin/spmmload" ./cmd/spmmload

    # drive <label> <base-url> — run the three loaders concurrently against
    # one endpoint and leave per-matrix logs in $bin.
    drive() {
        local label=$1 base=$2 pids=() i
        for i in 0 1 2; do
            "$bin/spmmload" -addr "$base" \
                -matrix "${matrices[$i]}" -scale "${scales[$i]}" -k "$k" \
                -workers "$workers" -n "$n" -retries 30 -retry-conn \
                >"$bin/$label.$i.load.log" 2>&1 &
            pids+=($!)
        done
        for i in "${pids[@]}"; do
            if ! wait "$i"; then
                cat "$bin/$label".*.load.log >&2
                echo "cluster-compare: $label load run failed" >&2
                exit 1
            fi
        done
    }

    # reqs <label> — sum the loaders' req/s.
    reqs() {
        awk '/^throughput /{sum += $2} END {printf "%.1f", sum}' "$bin/$1".*.load.log
    }

    echo "== single-replica run (3 matrices, n=$n each) =="
    "$bin/spmmserve" -addr "127.0.0.1:$port" -t 1 >"$bin/single.serve.log" 2>&1 &
    local spid=$!
    drive single "http://127.0.0.1:$port"
    kill -INT "$spid" 2>/dev/null || true
    wait "$spid" 2>/dev/null || true
    local single_rps; single_rps=$(reqs single)
    echo "single-replica aggregate: ${single_rps} req/s"

    echo
    echo "== 3-replica cluster run (spmmrouter, same load) =="
    local rpids=() fleet="" i
    for i in 0 1 2; do
        "$bin/spmmserve" -addr "127.0.0.1:$((port + 1 + i))" -t 1 >"$bin/replica.$i.serve.log" 2>&1 &
        rpids+=($!)
        fleet+="${fleet:+,}r$i=http://127.0.0.1:$((port + 1 + i))"
    done
    "$bin/spmmrouter" -addr "127.0.0.1:$port" -replicas "$fleet" >"$bin/router.log" 2>&1 &
    rpids+=($!)
    sleep 0.3
    drive cluster "http://127.0.0.1:$port"
    grep '^cluster:' "$bin/cluster.0.load.log" || true
    for i in "${rpids[@]}"; do
        kill -INT "$i" 2>/dev/null || true
        wait "$i" 2>/dev/null || true
    done
    local cluster_rps; cluster_rps=$(reqs cluster)
    echo "3-replica aggregate:      ${cluster_rps} req/s"

    local cores ratio verdict
    cores=$(nproc 2>/dev/null || echo 1)
    ratio=$(awk -v c="$cluster_rps" -v s="$single_rps" 'BEGIN {printf "%.2f", (s > 0 ? c / s : 0)}')
    echo
    echo "== cluster-compare verdict (cores=$cores) =="
    echo "scale factor: ${ratio}x (gate ${gain}x, enforced only with >= 3 cores)"
    if [ "$cores" -ge 3 ]; then
        if awk -v r="$ratio" -v g="$gain" 'BEGIN {exit !(r >= g)}'; then
            verdict="OK — ${ratio}x >= ${gain}x"
        else
            verdict="FAIL — ${ratio}x < ${gain}x"
        fi
    else
        verdict="INFORMATIONAL — only $cores core(s), gate not enforced"
    fi
    echo "cluster-compare: $verdict"

    mkdir -p "$dir"
    local stamp; stamp=$(date -u +%Y%m%dT%H%M%SZ)
    {
        echo "cluster-compare $stamp"
        echo "host cores: $cores"
        echo "load: 3 matrices (${matrices[*]}), n=$n each, workers=$workers, k=$k, servers -t 1"
        echo "single-replica aggregate: ${single_rps} req/s"
        echo "3-replica aggregate: ${cluster_rps} req/s"
        echo "scale factor: ${ratio}x"
        echo "verdict: $verdict"
    } >"$dir/CLUSTER_$stamp.txt"
    echo "recorded $dir/CLUSTER_$stamp.txt"
    case "$verdict" in FAIL*) exit 2;; esac
}

if [ "${1:-}" = "tune-compare" ]; then
    tune_compare
    exit 0
fi
if [ "${1:-}" = "cluster-compare" ]; then
    cluster_compare
    exit 0
fi

BENCHTIME=${BENCHTIME:-0.5s}
TOLERANCE=${TOLERANCE:-0.25}
# BenchmarkRequestTraceOverhead/disabled is the 0 allocs/op gate on the
# untraced hot path: the stored baseline records 0 allocs, so any alloc
# creeping into the disabled request-tracing path fails the perf gate.
FILTER=${FILTER:-'^(BenchmarkCalculate|BenchmarkSchedule|BenchmarkPool|BenchmarkTraceOverhead|BenchmarkObsOverhead|BenchmarkPhaseMix|BenchmarkServeCachedMultiply|BenchmarkServeUnbatched|BenchmarkServeBatched|BenchmarkTunedMultiply|BenchmarkWALAppend|BenchmarkRequestTraceOverhead|BenchmarkOverlayApply|BenchmarkCompaction)$'}
DIR=${DIR:-results/bench}

out=$(mktemp)
trap 'rm -f "$out"' EXIT

echo "== go test -bench $FILTER (benchtime $BENCHTIME) =="
go test -run '^$' -bench "$FILTER" -benchmem -benchtime "$BENCHTIME" . ./internal/serve ./internal/delta | tee "$out"

echo
echo "== perf gate (tolerance $TOLERANCE) =="
go run ./cmd/spmmbench -perf-baseline "$DIR" -perf-input "$out" \
    -perf-tolerance "$TOLERANCE" -perf-label "bench.sh benchtime=$BENCHTIME"
