#!/usr/bin/env bash
# bench.sh — the benchmark-regression flow: run the perf-baseline benches
# with -benchmem, snapshot the numbers as results/bench/BENCH_<date>.json,
# and gate against the previous baseline (exit 2 on regression).
#
#   ./scripts/bench.sh                   # full gate run
#   BENCHTIME=1x ./scripts/bench.sh      # smoke: one iteration per bench
#   TOLERANCE=0.10 ./scripts/bench.sh    # tighter ns/op gate
#   FILTER='^BenchmarkCalculate$' ./scripts/bench.sh
#
# The default filter covers the steady-state Calculate costs per format,
# the static-vs-balanced schedule race, the pooled-vs-spawn dispatch race,
# the tracer's disabled-path overhead (must stay 0 allocs/op and within the
# ns/op gate on CSR Calculate), the metric registry's overhead (both rows of
# BenchmarkObsOverhead must stay 0 allocs/op), the per-phase time mix, and
# the serving path (single-client cached-multiply latency plus batched vs
# unbatched concurrent throughput from internal/serve), and the durability
# tax (BenchmarkWALAppend: seal + write + fsync per registration record —
# the fsync row prices what crash-safe acks cost, the nosync row isolates
# the CPU side).
# Numbers are host-dependent: commit a refreshed baseline when the hardware
# or the kernels legitimately change.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME=${BENCHTIME:-0.5s}
TOLERANCE=${TOLERANCE:-0.25}
FILTER=${FILTER:-'^(BenchmarkCalculate|BenchmarkSchedule|BenchmarkPool|BenchmarkTraceOverhead|BenchmarkObsOverhead|BenchmarkPhaseMix|BenchmarkServeCachedMultiply|BenchmarkServeUnbatched|BenchmarkServeBatched|BenchmarkWALAppend)$'}
DIR=${DIR:-results/bench}

out=$(mktemp)
trap 'rm -f "$out"' EXIT

echo "== go test -bench $FILTER (benchtime $BENCHTIME) =="
go test -run '^$' -bench "$FILTER" -benchmem -benchtime "$BENCHTIME" . ./internal/serve | tee "$out"

echo
echo "== perf gate (tolerance $TOLERANCE) =="
go run ./cmd/spmmbench -perf-baseline "$DIR" -perf-input "$out" \
    -perf-tolerance "$TOLERANCE" -perf-label "bench.sh benchtime=$BENCHTIME"
